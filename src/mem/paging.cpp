#include "mem/paging.hpp"

#include "obs/prof.hpp"

#include <cassert>

namespace phantom::mem {

void
PageTable::map4k(VAddr va, PAddr pa, PageFlags flags)
{
    assert(va % kPageBytes == 0 && pa % kPageBytes == 0);
    detach(small_)[va / kPageBytes] = Entry{pa, flags};
    ++generation_;
}

void
PageTable::map2m(VAddr va, PAddr pa, PageFlags flags)
{
    assert(va % kHugePageBytes == 0 && pa % kHugePageBytes == 0);
    detach(huge_)[va / kHugePageBytes] = Entry{pa, flags};
    ++generation_;
}

void
PageTable::unmap(VAddr va)
{
    detach(small_).erase(va / kPageBytes);
    detach(huge_).erase(va / kHugePageBytes);
    ++generation_;
}

bool
PageTable::protect(VAddr va, PageFlags flags)
{
    if (small_->count(va / kPageBytes) != 0) {
        detach(small_)[va / kPageBytes].flags = flags;
        ++generation_;
        return true;
    }
    if (huge_->count(va / kHugePageBytes) != 0) {
        detach(huge_)[va / kHugePageBytes].flags = flags;
        ++generation_;
        return true;
    }
    return false;
}

std::optional<Translation>
PageTable::lookup(VAddr va) const
{
    if (auto it = small_->find(va / kPageBytes); it != small_->end()) {
        Translation t;
        t.fault = Fault::None;
        t.paddr = it->second.pa + (va % kPageBytes);
        t.huge = false;
        return t;
    }
    if (auto it = huge_->find(va / kHugePageBytes); it != huge_->end()) {
        Translation t;
        t.fault = Fault::None;
        t.paddr = it->second.pa + (va % kHugePageBytes);
        t.huge = true;
        return t;
    }
    return std::nullopt;
}

Translation
PageTable::translate(VAddr va, Privilege priv, Access access) const
{
    PROF_SCOPE(PageWalk);
    Translation result;
    if (!isCanonical(va)) {
        result.fault = Fault::NonCanonical;
        return result;
    }

    const Entry* entry = nullptr;
    u64 offset = 0;
    bool huge = false;
    if (auto it = small_->find(va / kPageBytes); it != small_->end()) {
        entry = &it->second;
        offset = va % kPageBytes;
    } else if (auto it2 = huge_->find(va / kHugePageBytes); it2 != huge_->end()) {
        entry = &it2->second;
        offset = va % kHugePageBytes;
        huge = true;
    }

    if (entry == nullptr || !entry->flags.present) {
        result.fault = Fault::NotPresent;
        return result;
    }
    if (priv == Privilege::User && !entry->flags.user) {
        result.fault = Fault::Protection;
        return result;
    }
    if (access == Access::Write && !entry->flags.writable) {
        result.fault = Fault::Protection;
        return result;
    }
    if (access == Access::Fetch && !entry->flags.executable) {
        result.fault = Fault::NoExec;
        return result;
    }

    result.fault = Fault::None;
    result.paddr = entry->pa + offset;
    result.huge = huge;
    return result;
}

} // namespace phantom::mem
