/**
 * @file
 * Micro-op cache model.
 *
 * Following the paper's reverse engineering (§5.1): 64 sets, 8 ways,
 * set selected by the low 12 bits of the instruction's *virtual* address
 * (bits [11:6]). Decoded instructions fill it; later fetches of the same
 * line can be served from it, which the performance counters expose
 * (op_cache_hit_miss.op_cache_hit on Zen 3/4, idq.dsb_cycles on Intel).
 */

#ifndef PHANTOM_MEM_UOP_CACHE_HPP
#define PHANTOM_MEM_UOP_CACHE_HPP

#include "mem/cache.hpp"

namespace phantom::mem {

/**
 * Virtually-indexed, virtually-tagged cache of decoded instruction lines.
 */
class UopCache
{
  public:
    UopCache(u32 sets = 64, u32 ways = 8)
        : cache_("uop", CacheGeometry{sets, ways, kCacheLineBytes})
    {
    }

    /** Set index for an instruction at @p va (bits [11:6] by default). */
    u32 setIndex(VAddr va) const { return cache_.setIndex(va); }

    /**
     * Look up the line holding the instruction at @p va; fill on miss.
     * @return true if the decoded line was already cached (op-cache hit).
     */
    bool lookupFill(VAddr va) { return cache_.access(va); }

    /** True if the line holding @p va is resident (no LRU side effect). */
    bool contains(VAddr va) const { return cache_.contains(va); }

    /** Invalidate the line holding @p va. */
    void flushLine(VAddr va) { cache_.flushLine(va); }

    void flushAll() { cache_.flushAll(); }

    u32 occupancy(u32 set) const { return cache_.occupancy(set); }
    u64 hitCount() const { return cache_.hitCount(); }
    u64 missCount() const { return cache_.missCount(); }
    void resetStats() { cache_.resetStats(); }

    /** Underlying tag cache, exposed for snapshot capture/restore. */
    Cache& tagCache() { return cache_; }
    const Cache& tagCache() const { return cache_; }

  private:
    Cache cache_;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_UOP_CACHE_HPP
