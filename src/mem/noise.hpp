/**
 * @file
 * Environmental cache noise.
 *
 * The paper's Prime+Probe channels are noisy (§7.3): syscall execution
 * thrashes primed sets, replacement state is unpredictable, and sibling
 * threads interfere. This injector models that as random line evictions
 * and fills whose intensity is a per-microarchitecture parameter,
 * calibrated so the end-to-end exploits land near the paper's accuracy.
 */

#ifndef PHANTOM_MEM_NOISE_HPP
#define PHANTOM_MEM_NOISE_HPP

#include "mem/hierarchy.hpp"
#include "sim/rng.hpp"

namespace phantom::mem {

/** Strength of background interference. */
struct NoiseConfig
{
    /** Expected evictions of random L1I lines per disturb() call
     *  (values above 1 mean multiple evictions per call). */
    double l1iEvictChance = 0.0;
    /** Expected evictions of random L1D lines per disturb() call. */
    double l1dEvictChance = 0.0;
    /** Expected evictions of random L2 lines per disturb() call. */
    double l2EvictChance = 0.0;
    /** Fills of random lines per disturb() (models other working sets). */
    u32 randomFills = 0;
};

/** Injects random cache disturbance. */
class NoiseInjector
{
  public:
    NoiseInjector(NoiseConfig config, u64 seed)
        : config_(config), rng_(seed)
    {
    }

    const NoiseConfig& config() const { return config_; }
    void setConfig(const NoiseConfig& config) { config_ = config; }

    /** Apply one round of disturbance to @p hierarchy. */
    void disturb(CacheHierarchy& hierarchy);

    /** Apply @p rounds rounds. */
    void
    disturb(CacheHierarchy& hierarchy, u32 rounds)
    {
        for (u32 i = 0; i < rounds; ++i)
            disturb(hierarchy);
    }

    /** Underlying RNG, exposed so snapshots capture the stream position. */
    Rng& rng() { return rng_; }
    const Rng& rng() const { return rng_; }

  private:
    NoiseConfig config_;
    Rng rng_;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_NOISE_HPP
