#include "mem/phys_mem.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace phantom::mem {

PhysicalMemory::PhysicalMemory(u64 installed_bytes)
    : installed_(installed_bytes)
{
}

PhysicalMemory::Frame*
PhysicalMemory::frameFor(PAddr pa, bool create) const
{
    if (pa >= installed_)
        throw std::out_of_range("PhysicalMemory: access beyond installed memory");
    u64 frame_no = pa / kPageBytes;
    auto it = frames_.find(frame_no);
    if (it != frames_.end())
        return it->second.get();
    if (!create)
        return nullptr;
    auto frame = std::make_shared<Frame>();
    frame->fill(0);
    Frame* raw = frame.get();
    frames_.emplace(frame_no, std::move(frame));
    return raw;
}

PhysicalMemory::Frame*
PhysicalMemory::frameForWrite(PAddr pa)
{
    if (pa >= installed_)
        throw std::out_of_range("PhysicalMemory: access beyond installed memory");
    u64 frame_no = pa / kPageBytes;
    auto it = frames_.find(frame_no);
    if (it == frames_.end()) {
        auto frame = std::make_shared<Frame>();
        frame->fill(0);
        Frame* raw = frame.get();
        frames_.emplace(frame_no, std::move(frame));
        return raw;
    }
    // Copy-on-write: a frame loaned out to a snapshot must be cloned
    // before this machine mutates it.
    if (it->second.use_count() > 1)
        it->second = std::make_shared<Frame>(*it->second);
    return it->second.get();
}

std::size_t
PhysicalMemory::framesShared() const
{
    std::size_t shared = 0;
    for (const auto& [frame_no, frame] : frames_)
        if (frame.use_count() > 1)
            ++shared;
    return shared;
}

u8
PhysicalMemory::read8(PAddr pa) const
{
    const Frame* frame = frameFor(pa, false);
    return frame ? (*frame)[pa % kPageBytes] : 0;
}

u64
PhysicalMemory::read64(PAddr pa) const
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | read8(pa + static_cast<u64>(i));
    return v;
}

void
PhysicalMemory::poke(PAddr pa, u8 value)
{
    Frame* frame = frameForWrite(pa);
    (*frame)[pa % kPageBytes] = value;
}

void
PhysicalMemory::write8(PAddr pa, u8 value)
{
    poke(pa, value);
    notifyWrite(pa, 1);
}

void
PhysicalMemory::write64(PAddr pa, u64 value)
{
    for (int i = 0; i < 8; ++i)
        poke(pa + static_cast<u64>(i), static_cast<u8>(value >> (8 * i)));
    notifyWrite(pa, 8);
}

void
PhysicalMemory::writeBlock(PAddr pa, const std::vector<u8>& bytes)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        Frame* frame = frameForWrite(pa + done);
        u64 offset = (pa + done) % kPageBytes;
        std::size_t chunk =
            std::min(bytes.size() - done,
                     static_cast<std::size_t>(kPageBytes - offset));
        std::memcpy(frame->data() + offset, bytes.data() + done, chunk);
        done += chunk;
    }
    if (!bytes.empty())
        notifyWrite(pa, bytes.size());
}

std::vector<u8>
PhysicalMemory::readBlock(PAddr pa, u64 length) const
{
    std::vector<u8> out(length);
    for (u64 i = 0; i < length; ++i)
        out[i] = read8(pa + i);
    return out;
}

} // namespace phantom::mem
