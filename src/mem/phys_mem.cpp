#include "mem/phys_mem.hpp"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace phantom::mem {

PhysicalMemory::PhysicalMemory(u64 installed_bytes)
    : installed_(installed_bytes), frames_(std::make_shared<FrameMap>())
{
}

const PhysicalMemory::Frame*
PhysicalMemory::frameAt(PAddr pa) const
{
    if (pa >= installed_)
        throw std::out_of_range("PhysicalMemory: access beyond installed memory");
    auto it = frames_->find(pa / kPageBytes);
    return it != frames_->end() ? it->second.get() : nullptr;
}

PhysicalMemory::FrameMap&
PhysicalMemory::mutableFrames()
{
    // A snapshot still references the map: clone it (pointer copies
    // only) so the snapshot's view stays frozen.
    if (frames_.use_count() > 1)
        frames_ = std::make_shared<FrameMap>(*frames_);
    return *frames_;
}

PhysicalMemory::Frame*
PhysicalMemory::frameForWrite(PAddr pa)
{
    if (pa >= installed_)
        throw std::out_of_range("PhysicalMemory: access beyond installed memory");
    FrameMap& frames = mutableFrames();
    u64 frame_no = pa / kPageBytes;
    auto it = frames.find(frame_no);
    if (it == frames.end()) {
        auto frame = std::make_shared<Frame>();
        frame->fill(0);
        Frame* raw = frame.get();
        frames.emplace(frame_no, std::move(frame));
        return raw;
    }
    // Copy-on-write: a frame loaned out to a snapshot must be cloned
    // before this machine mutates it.
    if (it->second.use_count() > 1)
        it->second = std::make_shared<Frame>(*it->second);
    return it->second.get();
}

void
PhysicalMemory::installSharedFrames(PAddr pa, const FrameMap& tpl)
{
    if (pa % kPageBytes != 0)
        throw std::invalid_argument(
            "PhysicalMemory::installSharedFrames: unaligned base");
    u64 base = pa / kPageBytes;
    FrameMap& frames = mutableFrames();
    frames.reserve(frames.size() + tpl.size());
    for (const auto& [index, frame] : tpl) {
        PAddr frame_pa = (base + index) * kPageBytes;
        if (frame_pa + kPageBytes > installed_)
            throw std::out_of_range(
                "PhysicalMemory::installSharedFrames: beyond installed memory");
        frames[base + index] = frame;
    }
}

std::size_t
PhysicalMemory::framesShared() const
{
    // Map-level sharing: until the first write detaches the map, every
    // frame is transitively shared with the snapshot holding the map.
    if (frames_.use_count() > 1)
        return frames_->size();
    std::size_t shared = 0;
    for (const auto& [frame_no, frame] : *frames_)
        if (frame.use_count() > 1)
            ++shared;
    return shared;
}

u8
PhysicalMemory::read8(PAddr pa) const
{
    const Frame* frame = frameAt(pa);
    return frame ? (*frame)[pa % kPageBytes] : 0;
}

u64
PhysicalMemory::read64(PAddr pa) const
{
    u64 offset = pa % kPageBytes;
    if (offset + 8 <= kPageBytes && pa + 8 <= installed_) {
        // One frame lookup for the whole quadword (the common, aligned
        // case); absent frames read as zero.
        const Frame* frame = frameAt(pa);
        if (frame == nullptr)
            return 0;
        const u8* p = frame->data() + offset;
        u64 v = 0;
        for (int i = 7; i >= 0; --i)
            v = (v << 8) | p[i];
        return v;
    }
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | read8(pa + static_cast<u64>(i));
    return v;
}

void
PhysicalMemory::poke(PAddr pa, u8 value)
{
    Frame* frame = frameForWrite(pa);
    (*frame)[pa % kPageBytes] = value;
}

void
PhysicalMemory::write8(PAddr pa, u8 value)
{
    poke(pa, value);
    notifyWrite(pa, 1);
}

void
PhysicalMemory::write64(PAddr pa, u64 value)
{
    u64 offset = pa % kPageBytes;
    if (offset + 8 <= kPageBytes && pa + 8 <= installed_) {
        u8* p = frameForWrite(pa)->data() + offset;
        for (int i = 0; i < 8; ++i)
            p[i] = static_cast<u8>(value >> (8 * i));
    } else {
        for (int i = 0; i < 8; ++i)
            poke(pa + static_cast<u64>(i), static_cast<u8>(value >> (8 * i)));
    }
    notifyWrite(pa, 8);
}

void
PhysicalMemory::writeBlock(PAddr pa, const std::vector<u8>& bytes)
{
    std::size_t done = 0;
    while (done < bytes.size()) {
        Frame* frame = frameForWrite(pa + done);
        u64 offset = (pa + done) % kPageBytes;
        std::size_t chunk =
            std::min(bytes.size() - done,
                     static_cast<std::size_t>(kPageBytes - offset));
        std::memcpy(frame->data() + offset, bytes.data() + done, chunk);
        done += chunk;
    }
    if (!bytes.empty())
        notifyWrite(pa, bytes.size());
}

std::vector<u8>
PhysicalMemory::readBlock(PAddr pa, u64 length) const
{
    std::vector<u8> out(length);
    u64 done = 0;
    while (done < length) {
        const Frame* frame = frameAt(pa + done);
        u64 offset = (pa + done) % kPageBytes;
        u64 chunk = std::min(length - done, kPageBytes - offset);
        if (frame != nullptr)
            std::memcpy(out.data() + done, frame->data() + offset, chunk);
        done += chunk;
    }
    return out;
}

} // namespace phantom::mem
