#include "mem/noise.hpp"

namespace phantom::mem {

void
NoiseInjector::disturb(CacheHierarchy& hierarchy)
{
    auto evict_random = [&](Cache& cache, double expected) {
        u32 whole = static_cast<u32>(expected);
        double frac = expected - whole;
        u32 count = whole + (rng_.chance(frac) ? 1 : 0);
        for (u32 i = 0; i < count; ++i) {
            u32 set = static_cast<u32>(rng_.below(cache.geometry().sets));
            cache.evictLruOf(set);
        }
    };

    evict_random(hierarchy.l1i(), config_.l1iEvictChance);
    evict_random(hierarchy.l1d(), config_.l1dEvictChance);
    evict_random(hierarchy.l2(), config_.l2EvictChance);

    for (u32 i = 0; i < config_.randomFills; ++i) {
        // A distinct high physical range so noise fills do not collide
        // with experiment data other than by set index.
        u64 line = rng_.below(1ull << 26);
        PAddr pa = (1ull << 40) + line * kCacheLineBytes;
        hierarchy.l1d().fill(pa);
        hierarchy.l2().fill(pa);
    }
}

} // namespace phantom::mem
