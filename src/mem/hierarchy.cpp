#include "mem/hierarchy.hpp"

#include "obs/prof.hpp"

namespace phantom::mem {

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_("l1i", config.l1i),
      l1d_("l1d", config.l1d),
      l2_("l2", config.l2)
{
}

Cycle
CacheHierarchy::fetchAccess(PAddr pa)
{
    PROF_SCOPE(CacheAccess);
    if (l1i_.access(pa))
        return config_.latL1;
    if (l2_.access(pa))
        return config_.latL2;
    return config_.latMem;
}

Cycle
CacheHierarchy::dataAccess(PAddr pa)
{
    PROF_SCOPE(CacheAccess);
    if (l1d_.access(pa))
        return config_.latL1;
    if (l2_.access(pa))
        return config_.latL2;
    return config_.latMem;
}

void
CacheHierarchy::flushLine(PAddr pa)
{
    l1i_.flushLine(pa);
    l1d_.flushLine(pa);
    l2_.flushLine(pa);
}

void
CacheHierarchy::flushAll()
{
    l1i_.flushAll();
    l1d_.flushAll();
    l2_.flushAll();
}

} // namespace phantom::mem
