/**
 * @file
 * Virtual memory: page table entries, translation, and fault reporting.
 *
 * Supports 4 KiB and 2 MiB pages with the x86-64 permission bits the
 * exploits depend on: Present, Writable, User, and NX. Speculative
 * accesses that fail translation are silently suppressed by the CPU
 * model; architectural accesses raise faults through the returned code.
 */

#ifndef PHANTOM_MEM_PAGING_HPP
#define PHANTOM_MEM_PAGING_HPP

#include "sim/types.hpp"

#include <memory>
#include <optional>
#include <unordered_map>

namespace phantom::mem {

/** Kind of memory access being translated. */
enum class Access : u8 { Read, Write, Fetch };

/** Why a translation failed. */
enum class Fault : u8 {
    None = 0,
    NotPresent,      ///< no mapping for the address
    Protection,      ///< user access to supervisor page, or write to RO
    NoExec,          ///< instruction fetch from an NX page
    NonCanonical,    ///< address is not in canonical form
};

/** Page table entry attributes. */
struct PageFlags
{
    bool present = true;
    bool writable = true;
    bool user = false;       ///< accessible from user mode
    bool executable = false; ///< NX bit cleared
};

/** Result of a translation attempt. */
struct Translation
{
    Fault fault = Fault::NotPresent;
    PAddr paddr = 0;
    bool huge = false;       ///< mapped via a 2 MiB entry

    bool ok() const { return fault == Fault::None; }
};

/**
 * A per-address-space page table. Kernel mappings are shared by
 * installing the same PageTable in both contexts (the OS model keeps one
 * table per process containing both user and kernel entries, mirroring
 * a non-KPTI Linux layout, which is the configuration the paper attacks).
 */
class PageTable
{
  public:
    PageTable()
        : small_(std::make_shared<EntryMap>()),
          huge_(std::make_shared<EntryMap>())
    {
    }

    /** Map a 4 KiB page at @p va to @p pa with @p flags. Replaces any
     *  existing 4 KiB mapping of the page. */
    void map4k(VAddr va, PAddr pa, PageFlags flags);

    /** Map a 2 MiB page. @p va and @p pa must be 2 MiB aligned. */
    void map2m(VAddr va, PAddr pa, PageFlags flags);

    /** Remove the mapping covering @p va, if any. */
    void unmap(VAddr va);

    /** Change flags of the mapping covering @p va. Returns false if the
     *  address is unmapped. */
    bool protect(VAddr va, PageFlags flags);

    /** Translate @p va for an @p access performed at @p priv. */
    Translation translate(VAddr va, Privilege priv, Access access) const;

    /** Raw lookup without permission checks (for tooling / tests). */
    std::optional<Translation> lookup(VAddr va) const;

    std::size_t entryCount() const { return small_->size() + huge_->size(); }

    /** One mapping; exposed for snapshot capture/restore. */
    struct Entry
    {
        PAddr pa;
        PageFlags flags;
    };

    using EntryMap = std::unordered_map<u64, Entry>;
    using EntryMapPtr = std::shared_ptr<const EntryMap>;

    /** 4 KiB entries keyed by va / 4K (snapshot enumeration). */
    const EntryMap& smallEntries() const { return *small_; }
    /** 2 MiB entries keyed by va / 2M (snapshot enumeration). */
    const EntryMap& hugeEntries() const { return *huge_; }

    /** The 4 KiB entry map by pointer — O(1), no copies (snapshot
     *  capture). Immutable: mutators copy-on-write first. */
    EntryMapPtr shareSmall() const { return small_; }
    /** The 2 MiB entry map by pointer (snapshot capture). */
    EntryMapPtr shareHuge() const { return huge_; }

    /** Adopt both maps wholesale by pointer — O(1) (snapshot restore). */
    void
    adoptEntries(EntryMapPtr small, EntryMapPtr huge)
    {
        small_ = std::const_pointer_cast<EntryMap>(std::move(small));
        huge_ = std::const_pointer_cast<EntryMap>(std::move(huge));
        ++generation_;
    }

    /** Replace all mappings wholesale by value (tests, tooling). */
    void
    setEntries(EntryMap small, EntryMap huge)
    {
        small_ = std::make_shared<EntryMap>(std::move(small));
        huge_ = std::make_shared<EntryMap>(std::move(huge));
        ++generation_;
    }

    /**
     * Monotonic mutation counter: bumped by every call that can change
     * a translation (map4k/map2m/unmap/protect/setEntries). Consumers
     * caching translation-derived state — the decode cache — compare it
     * lazily and conservatively flush on change. Deliberately excluded
     * from snapshots: it is bookkeeping about mutations, not state.
     */
    u64 generation() const { return generation_; }

  private:
    /** @p map, cloned first if a snapshot still shares it (CoW). */
    static EntryMap&
    detach(std::shared_ptr<EntryMap>& map)
    {
        if (map.use_count() > 1)
            map = std::make_shared<EntryMap>(*map);
        return *map;
    }

    std::shared_ptr<EntryMap> small_;  ///< key: va / 4K (never null)
    std::shared_ptr<EntryMap> huge_;   ///< key: va / 2M (never null)
    u64 generation_ = 0;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_PAGING_HPP
