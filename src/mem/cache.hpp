/**
 * @file
 * Generic set-associative cache model with true-LRU replacement.
 *
 * Only tags and replacement state are modelled — data comes from the
 * backing PhysicalMemory. That is all Prime+Probe / Flush+Reload need:
 * presence and the latency difference it causes.
 */

#ifndef PHANTOM_MEM_CACHE_HPP
#define PHANTOM_MEM_CACHE_HPP

#include "sim/types.hpp"

#include <string>
#include <vector>

namespace phantom::mem {

/** Geometry of a cache. */
struct CacheGeometry
{
    u32 sets = 64;
    u32 ways = 8;
    u32 lineBytes = kCacheLineBytes;

    u64 sizeBytes() const { return u64{sets} * ways * lineBytes; }
};

/**
 * Set-associative cache of address tags. Addresses may be physical or
 * virtual depending on which level instantiates it; the cache itself is
 * agnostic.
 */
class Cache
{
  public:
    Cache(std::string name, CacheGeometry geometry);

    const std::string& name() const { return name_; }
    const CacheGeometry& geometry() const { return geom_; }

    /** Set index an address maps to. */
    u32 setIndex(u64 addr) const { return (addr / geom_.lineBytes) % geom_.sets; }

    /** True if the line holding @p addr is present. Does not touch LRU. */
    bool contains(u64 addr) const;

    /**
     * Access the line holding @p addr: on hit refresh LRU, on miss fill
     * (evicting the LRU way).
     * @return true on hit.
     */
    bool access(u64 addr);

    /** Insert the line holding @p addr without reporting hit/miss. */
    void fill(u64 addr);

    /** Remove the line holding @p addr if present. Returns true if it was. */
    bool flushLine(u64 addr);

    /** Invalidate everything. */
    void flushAll();

    /** Invalidate every line of set @p set. */
    void flushSet(u32 set);

    /** Evict the LRU way of set @p set (no-op if the set is empty). */
    void evictLruOf(u32 set);

    /** Number of valid ways in @p set. */
    u32 occupancy(u32 set) const;

    u64 hitCount() const { return hits_; }
    u64 missCount() const { return misses_; }
    void resetStats() { hits_ = misses_ = 0; }

    /** One tag-array entry; exposed for snapshot capture/restore. */
    struct Line
    {
        bool valid = false;
        u64 tag = 0;
        u64 lastUse = 0;
    };

    /** Complete mutable state (tags + LRU clock + stats) for snapshots. */
    struct State
    {
        std::vector<Line> lines;
        u64 useClock = 0;
        u64 hits = 0;
        u64 misses = 0;
    };

    State state() const { return State{lines_, useClock_, hits_, misses_}; }
    void setState(const State& s);

  private:

    u64 tagOf(u64 addr) const { return (addr / geom_.lineBytes) / geom_.sets; }
    Line* findLine(u64 addr);
    const Line* findLine(u64 addr) const;

    std::string name_;
    CacheGeometry geom_;
    std::vector<Line> lines_;   ///< sets * ways, row-major by set
    u64 useClock_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_CACHE_HPP
