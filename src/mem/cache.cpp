#include "mem/cache.hpp"

#include <cassert>

namespace phantom::mem {

Cache::Cache(std::string name, CacheGeometry geometry)
    : name_(std::move(name)), geom_(geometry),
      lines_(static_cast<std::size_t>(geometry.sets) * geometry.ways)
{
    assert(geom_.sets > 0 && geom_.ways > 0 && geom_.lineBytes > 0);
}

void
Cache::setState(const State& s)
{
    assert(s.lines.size() == lines_.size());
    lines_ = s.lines;
    useClock_ = s.useClock;
    hits_ = s.hits;
    misses_ = s.misses;
}

Cache::Line*
Cache::findLine(u64 addr)
{
    u32 set = setIndex(addr);
    u64 tag = tagOf(addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * geom_.ways];
    for (u32 w = 0; w < geom_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const Cache::Line*
Cache::findLine(u64 addr) const
{
    return const_cast<Cache*>(this)->findLine(addr);
}

bool
Cache::contains(u64 addr) const
{
    return findLine(addr) != nullptr;
}

bool
Cache::access(u64 addr)
{
    ++useClock_;
    if (Line* line = findLine(addr)) {
        line->lastUse = useClock_;
        ++hits_;
        return true;
    }
    ++misses_;
    fill(addr);
    return false;
}

void
Cache::fill(u64 addr)
{
    ++useClock_;
    if (Line* line = findLine(addr)) {
        line->lastUse = useClock_;
        return;
    }
    u32 set = setIndex(addr);
    Line* base = &lines_[static_cast<std::size_t>(set) * geom_.ways];
    Line* victim = &base[0];
    for (u32 w = 0; w < geom_.ways; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tagOf(addr);
    victim->lastUse = useClock_;
}

bool
Cache::flushLine(u64 addr)
{
    if (Line* line = findLine(addr)) {
        line->valid = false;
        return true;
    }
    return false;
}

void
Cache::flushAll()
{
    for (Line& line : lines_)
        line.valid = false;
}

void
Cache::flushSet(u32 set)
{
    assert(set < geom_.sets);
    Line* base = &lines_[static_cast<std::size_t>(set) * geom_.ways];
    for (u32 w = 0; w < geom_.ways; ++w)
        base[w].valid = false;
}

void
Cache::evictLruOf(u32 set)
{
    assert(set < geom_.sets);
    Line* base = &lines_[static_cast<std::size_t>(set) * geom_.ways];
    Line* victim = nullptr;
    for (u32 w = 0; w < geom_.ways; ++w) {
        if (!base[w].valid)
            continue;
        if (victim == nullptr || base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    if (victim != nullptr)
        victim->valid = false;
}

u32
Cache::occupancy(u32 set) const
{
    assert(set < geom_.sets);
    const Line* base = &lines_[static_cast<std::size_t>(set) * geom_.ways];
    u32 n = 0;
    for (u32 w = 0; w < geom_.ways; ++w)
        n += base[w].valid ? 1 : 0;
    return n;
}

} // namespace phantom::mem
