/**
 * @file
 * Two-level cache hierarchy (split L1I/L1D, unified L2) with a flat
 * memory latency behind it. Physically indexed and tagged; the 64-set L1s
 * are VIPT-equivalent since index bits [11:6] lie inside the page offset.
 */

#ifndef PHANTOM_MEM_HIERARCHY_HPP
#define PHANTOM_MEM_HIERARCHY_HPP

#include "mem/cache.hpp"

namespace phantom::mem {

/** Latency and geometry configuration for the hierarchy. */
struct HierarchyConfig
{
    CacheGeometry l1i{64, 8, kCacheLineBytes};   ///< 32 KiB
    CacheGeometry l1d{64, 8, kCacheLineBytes};   ///< 32 KiB
    CacheGeometry l2{1024, 8, kCacheLineBytes};  ///< 512 KiB
    Cycle latL1 = 4;
    Cycle latL2 = 14;
    Cycle latMem = 220;
};

/**
 * The machine's cache hierarchy. Access methods return the latency of the
 * access and update presence/LRU state at every level touched.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig& config = {});

    const HierarchyConfig& config() const { return config_; }

    /** Instruction fetch of the line holding @p pa. */
    Cycle fetchAccess(PAddr pa);

    /** Data read/write of the line holding @p pa. */
    Cycle dataAccess(PAddr pa);

    /** Evict the line holding @p pa from every level (clflush). */
    void flushLine(PAddr pa);

    /** Invalidate every level. */
    void flushAll();

    Cache& l1i() { return l1i_; }
    Cache& l1d() { return l1d_; }
    Cache& l2() { return l2_; }
    const Cache& l1i() const { return l1i_; }
    const Cache& l1d() const { return l1d_; }
    const Cache& l2() const { return l2_; }

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
};

} // namespace phantom::mem

#endif // PHANTOM_MEM_HIERARCHY_HPP
