#include "analysis/gadget_scan.hpp"

#include "isa/assembler.hpp"
#include "sim/rng.hpp"

namespace phantom::analysis {

using namespace isa;

GadgetScanResult
scanGadgets(const std::vector<u8>& code, VAddr base_va,
            const GadgetScanOptions& options)
{
    (void)base_va;
    GadgetScanResult result;

    // Decode the region once.
    std::vector<Insn> insns;
    std::size_t offset = 0;
    while (offset < code.size()) {
        Insn insn = decode(code.data() + offset, code.size() - offset);
        insns.push_back(insn);
        offset += insn.length;
    }

    for (std::size_t i = 0; i < insns.size(); ++i) {
        if (insns[i].kind != InsnKind::JccRel)
            continue;
        ++result.conditionalBranches;

        bool classic = false;
        bool phantom = false;
        // Registers holding a loaded (potentially secret) value.
        u16 tainted = 0;

        std::size_t end = std::min(insns.size(),
                                   i + 1 + options.windowInsns);
        for (std::size_t j = i + 1; j < end; ++j) {
            const Insn& insn = insns[j];
            switch (insn.kind) {
              case InsnKind::Load:
                phantom = true;   // a single load suffices with P3
                if (tainted & (1u << insn.src))
                    classic = true;   // base depends on a prior load
                tainted |= 1u << insn.dst;
                break;
              case InsnKind::MovReg:
              case InsnKind::Add:
              case InsnKind::Sub:
              case InsnKind::Xor:
              case InsnKind::And:
                // Taint propagates through arithmetic into dst.
                if (tainted & (1u << insn.src))
                    tainted |= 1u << insn.dst;
                break;
              case InsnKind::MovImm:
                tainted &= ~(1u << insn.dst);   // overwritten
                break;
              case InsnKind::Lfence:
              case InsnKind::Mfence:
              case InsnKind::Ret:
              case InsnKind::Hlt:
              case InsnKind::Ud2:
              case InsnKind::Invalid:
                j = end;          // speculation window closed
                break;
              default:
                break;
            }
        }

        result.classicGadgets += classic ? 1 : 0;
        result.phantomGadgets += phantom ? 1 : 0;
    }
    return result;
}

std::vector<u8>
syntheticKernelText(u64 bytes, u64 seed)
{
    Rng rng(seed);
    Assembler code(0);

    // Emit function bodies until the budget is reached. The instruction
    // mix approximates compiled kernel code: mostly ALU/moves, ~15%
    // loads/stores, ~15% branches; most loads are independent, a
    // minority form the dependent double-load pattern.
    while (code.size() + 64 < bytes) {
        u32 body = 6 + static_cast<u32>(rng.below(18));
        for (u32 k = 0; k < body; ++k) {
            u8 a = static_cast<u8>(rng.below(kNumRegs));
            u8 b = static_cast<u8>(rng.below(kNumRegs));
            if (a == RSP)
                a = RAX;
            if (b == RSP)
                b = RBX;
            // Weights approximating compiled kernel code: ~10% bounds
            // checks, ~13% loads (dependent pointer chases after a
            // bounds check are rare), ~5% stores, the rest ALU/moves.
            u64 dice = rng.below(60);
            if (dice < 6) {
                // Bounds check: cmp + forward jcc.
                code.cmpImm(a, static_cast<i32>(rng.below(4096)));
                code.jcc(static_cast<Cond>(rng.below(4)),
                         code.here() + 6 + 12);
            } else if (dice < 13) {
                // Load into a freshly clobbered register so incidental
                // taint chains stay rare (compilers reload from stable
                // base pointers, not from just-loaded values).
                code.movImm(a, rng.next());
                code.load(a, b, static_cast<i32>(rng.below(0x800)));
            } else if (dice < 14) {
                // Dependent double load (a classic gadget when it
                // follows a conditional).
                code.load(a, b, static_cast<i32>(rng.below(0x800)));
                code.load(b, a, 0);
            } else if (dice < 17) {
                code.store(b, static_cast<i32>(rng.below(0x800)), a);
            } else if (dice < 21) {
                code.movImm(a, rng.next());
            } else if (dice < 24) {
                code.shl(a, static_cast<u8>(rng.below(8)));
            } else {
                switch (rng.below(4)) {
                  case 0: code.add(a, b); break;
                  case 1: code.sub(a, b); break;
                  case 2: code.xorReg(a, b); break;
                  default: code.movReg(a, b); break;
                }
            }
        }
        code.ret();
    }
    code.hlt();
    return code.finish();
}

} // namespace phantom::analysis
