#include "analysis/gf2.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <string>

namespace phantom::analysis {

u64
Gf2Span::reduce(u64 row) const
{
    // Basis rows have pairwise-distinct leading bits; cancel row's
    // leading bit against the matching basis row until none matches.
    while (row != 0) {
        u64 top = 1ull << (63 - std::countl_zero(row));
        bool reduced = false;
        for (u64 b : basis_) {
            u64 b_top = 1ull << (63 - std::countl_zero(b));
            if (b_top == top) {
                row ^= b;
                reduced = true;
                break;
            }
        }
        if (!reduced)
            break;
    }
    return row;
}

bool
Gf2Span::insert(u64 row)
{
    row = reduce(row);
    if (row == 0)
        return false;
    basis_.push_back(row);
    return true;
}

bool
Gf2Span::contains(u64 row) const
{
    return reduce(row) == 0;
}

std::vector<u64>
recoverParityMasks(const std::vector<u64>& diffs,
                   const ParityRecoveryOptions& options)
{
    std::vector<unsigned> candidate_bits;
    for (unsigned b = options.bitLo; b <= options.bitHi; ++b) {
        if (options.requireBit47 && b == 47)
            continue;
        candidate_bits.push_back(b);
    }

    auto satisfies = [&](u64 mask) {
        for (u64 d : diffs) {
            if (parity(mask & d) != 0)
                return false;
        }
        return true;
    };

    std::vector<u64> found;
    Gf2Span span;
    u64 base = options.requireBit47 ? (1ull << 47) : 0;

    // Enumerate masks in order of increasing weight so that the span
    // filter prefers the minimal functions (the paper bounds the number
    // of coefficients for the same reason).
    unsigned extra_budget =
        options.maxWeight - (options.requireBit47 ? 1 : 0);
    std::size_t n = candidate_bits.size();

    auto check = [&](u64 mask) {
        if (satisfies(mask) && !span.contains(mask)) {
            span.insert(mask);
            found.push_back(mask);
        }
    };

    // Recursive combination enumeration over candidate_bits.
    auto enumerate = [&](auto&& self, std::size_t start, unsigned left,
                         u64 mask) -> void {
        if (left == 0) {
            check(mask);
            return;
        }
        for (std::size_t i = start; i + left <= n; ++i)
            self(self, i + 1, left - 1, mask | (1ull << candidate_bits[i]));
    };

    for (unsigned weight = 1; weight <= extra_budget; ++weight)
        enumerate(enumerate, 0, weight, base);

    return found;
}

std::string
maskToString(u64 mask)
{
    std::ostringstream oss;
    bool first = true;
    for (int b = 63; b >= 0; --b) {
        if (mask & (1ull << b)) {
            if (!first)
                oss << " ^ ";
            oss << "b" << b;
            first = false;
        }
    }
    return oss.str();
}

} // namespace phantom::analysis
