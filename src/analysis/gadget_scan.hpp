/**
 * @file
 * Speculative-gadget surface scanner (paper §9.3).
 *
 * A conventional Spectre-V1 disclosure gadget needs *two dependent
 * loads* inside one speculation window: one fetching the secret, one
 * encoding it into the cache. PHANTOM's P3 primitive dispatches the
 * encoding load elsewhere (a hijacked prediction inside the window), so
 * a *single* attacker-reachable load — an "MDS gadget" [Kasper] —
 * becomes sufficient. The paper reports this expands the Linux-kernel
 * gadget surface about 4x (183 -> 722).
 *
 * This scanner walks executable code, decodes it linearly, and counts
 * both gadget classes after each conditional branch:
 *
 *   classic:  jcc ... load r_a <- [r_b] ... load r_c <- [f(r_a)]
 *   phantom:  jcc ... load r_a <- [r_b]            (any single load)
 *
 * within a configurable speculation-window instruction budget.
 */

#ifndef PHANTOM_ANALYSIS_GADGET_SCAN_HPP
#define PHANTOM_ANALYSIS_GADGET_SCAN_HPP

#include "isa/encoder.hpp"

#include <vector>

namespace phantom::analysis {

/** Scanner parameters. */
struct GadgetScanOptions
{
    u32 windowInsns = 24;   ///< speculation window after the branch
};

/** Result of scanning one code region. */
struct GadgetScanResult
{
    u64 conditionalBranches = 0;
    u64 classicGadgets = 0;   ///< dependent double-load (Spectre-V1)
    u64 phantomGadgets = 0;   ///< single-load (exploitable with P3)

    double
    expansionFactor() const
    {
        return classicGadgets == 0
                   ? 0.0
                   : static_cast<double>(phantomGadgets) /
                         static_cast<double>(classicGadgets);
    }
};

/**
 * Scan @p code (decoded linearly from @p base_va) for speculative
 * disclosure gadgets.
 */
GadgetScanResult scanGadgets(const std::vector<u8>& code, VAddr base_va,
                             const GadgetScanOptions& options = {});

/**
 * Generate a synthetic kernel-like instruction mix for surface studies:
 * function bodies with bounds checks, loads with register bases, calls,
 * and arithmetic, in realistic proportions.
 */
std::vector<u8> syntheticKernelText(u64 bytes, u64 seed);

} // namespace phantom::analysis

#endif // PHANTOM_ANALYSIS_GADGET_SCAN_HPP
