/**
 * @file
 * GF(2) linear algebra and XOR-parity function recovery.
 *
 * The paper reverse engineers the Zen 3/4 cross-privilege BTB functions
 * with a Z3 SMT solver over equations
 * (x0*A0) ^ (x1*A1) ^ ... ^ (1*A47) = y with a bound on the number of
 * nonzero coefficients (§6.2). Those constraints are linear over GF(2):
 * a coefficient mask m is a solution exactly when parity(m & (A ^ B)) = 0
 * for every colliding pair (A, B). We therefore replace the SMT solver
 * with exhaustive bounded-weight search validated against the collision
 * difference set, plus Gaussian elimination utilities for span checks.
 */

#ifndef PHANTOM_ANALYSIS_GF2_HPP
#define PHANTOM_ANALYSIS_GF2_HPP

#include "sim/types.hpp"

#include <string>
#include <vector>

namespace phantom::analysis {

/** Parity (XOR reduction) of the set bits of @p x. */
constexpr u64
parity(u64 x)
{
    x ^= x >> 32;
    x ^= x >> 16;
    x ^= x >> 8;
    x ^= x >> 4;
    x ^= x >> 2;
    x ^= x >> 1;
    return x & 1;
}

/**
 * A set of GF(2) row vectors (up to 64 columns) kept in row-echelon form.
 */
class Gf2Span
{
  public:
    /** Insert @p row into the span. @return true if it was independent. */
    bool insert(u64 row);

    /** True if @p row is a GF(2) combination of inserted rows. */
    bool contains(u64 row) const;

    /** Dimension of the span. */
    std::size_t rank() const { return basis_.size(); }

    const std::vector<u64>& basis() const { return basis_; }

  private:
    u64 reduce(u64 row) const;

    std::vector<u64> basis_;   ///< rows with distinct leading bits
};

/** Options for parity-mask recovery. */
struct ParityRecoveryOptions
{
    unsigned bitLo = 12;        ///< lowest address bit considered
    unsigned bitHi = 47;        ///< highest address bit considered
    unsigned maxWeight = 4;     ///< max nonzero coefficients per function
    /** Force bit 47 into every function, as the paper's solver setup
     *  did ("(1 x A47)" in §6.2). */
    bool requireBit47 = true;
};

/**
 * Recover all parity masks m with popcount(m) <= maxWeight over bits
 * [bitLo, bitHi] such that parity(m & d) == 0 for every difference
 * vector in @p diffs (d = A ^ B for each observed colliding pair).
 *
 * Masks that are GF(2) combinations of previously found masks are
 * filtered (the paper's coefficient bound serves the same purpose), with
 * the search proceeding in order of increasing weight.
 */
std::vector<u64> recoverParityMasks(const std::vector<u64>& diffs,
                                    const ParityRecoveryOptions& options = {});

/** Pretty-print a parity mask as "b47 ^ b35 ^ b23". */
std::string maskToString(u64 mask);

} // namespace phantom::analysis

#endif // PHANTOM_ANALYSIS_GF2_HPP
