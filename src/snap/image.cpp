#include "snap/image.hpp"

#include <algorithm>
#include <cstring>

namespace phantom::snap {

namespace {

// -- Little-endian writer ---------------------------------------------------

struct Writer
{
    std::vector<u8> out;

    void putU8(u8 v) { out.push_back(v); }

    void
    putU32(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            out.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    putU64(u64 v)
    {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<u8>(v >> (8 * i)));
    }

    void
    putBytes(const void* data, std::size_t n)
    {
        const u8* p = static_cast<const u8*>(data);
        out.insert(out.end(), p, p + n);
    }

    void
    putString(const std::string& s)
    {
        putU64(s.size());
        putBytes(s.data(), s.size());
    }
};

// -- Strict bounds-checked reader -------------------------------------------

struct Reader
{
    const u8* data = nullptr;
    u64 pos = 0;
    u64 end = 0;
    std::string error;

    Reader(const u8* d, u64 offset, u64 length)
        : data(d), pos(offset), end(offset + length)
    {
    }

    bool ok() const { return error.empty(); }
    u64 remaining() const { return ok() ? end - pos : 0; }

    bool
    need(u64 n, const char* what)
    {
        if (!ok())
            return false;
        if (end - pos < n) {
            error = std::string("truncated ") + what;
            return false;
        }
        return true;
    }

    u8
    getU8(const char* what)
    {
        if (!need(1, what))
            return 0;
        return data[pos++];
    }

    u32
    getU32(const char* what)
    {
        if (!need(4, what))
            return 0;
        u32 v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<u32>(data[pos + i]) << (8 * i);
        pos += 4;
        return v;
    }

    u64
    getU64(const char* what)
    {
        if (!need(8, what))
            return 0;
        u64 v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<u64>(data[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    bool
    getBytes(void* dst, u64 n, const char* what)
    {
        if (!need(n, what))
            return false;
        std::memcpy(dst, data + pos, n);
        pos += n;
        return true;
    }

    std::string
    getString(u64 max_len, const char* what)
    {
        u64 len = getU64(what);
        if (!ok())
            return {};
        if (len > max_len || !need(len, what)) {
            if (error.empty())
                error = std::string("oversized ") + what;
            return {};
        }
        std::string s(reinterpret_cast<const char*>(data + pos),
                      static_cast<std::size_t>(len));
        pos += len;
        return s;
    }

    /**
     * Read an element count for elements of at least @p min_elem_bytes
     * each; rejects counts the remaining bytes cannot possibly hold, so
     * a fuzzed length field cannot trigger a huge allocation.
     */
    u64
    getCount(u64 min_elem_bytes, const char* what)
    {
        u64 n = getU64(what);
        if (!ok())
            return 0;
        if (min_elem_bytes != 0 && n > remaining() / min_elem_bytes) {
            error = std::string("implausible count in ") + what;
            return 0;
        }
        return n;
    }
};

template <typename Map>
std::vector<typename Map::key_type>
sortedKeys(const Map& map)
{
    std::vector<typename Map::key_type> keys;
    keys.reserve(map.size());
    for (const auto& [key, value] : map)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    return keys;
}

// -- Section encoders / decoders --------------------------------------------
// Every encoder iterates in a sorted, stable order so that re-serializing
// a loaded state is bit-identical to the original image.

std::vector<u8>
encodeScalars(const MachineState& s)
{
    Writer w;
    w.putU64(s.scalars.pc);
    w.putU8(static_cast<u8>(s.scalars.priv));
    w.putU64(s.scalars.syscallEntry);
    w.putU64(s.scalars.savedUserPc);
    w.putU64(s.scalars.cycles);
    w.putU64(s.scalars.insnsSinceNoise);
    w.putU64(s.scalars.suppressConfirms);
    w.putU8(s.scalars.ibpbOnSyscall ? 1 : 0);
    w.putU8(s.scalars.smtThread);
    w.putU64(s.scalars.episodeId);
    w.putU64(s.scalars.curEpisode);
    w.putU64(s.scalars.attrib.cycles.size());
    for (u64 c : s.scalars.attrib.cycles)
        w.putU64(c);
    return w.out;
}

bool
decodeScalars(Reader& r, MachineState& s)
{
    s.scalars.pc = r.getU64("scalars.pc");
    u8 priv = r.getU8("scalars.priv");
    if (r.ok() && priv > 1) {
        r.error = "invalid privilege value";
        return false;
    }
    s.scalars.priv = static_cast<Privilege>(priv);
    s.scalars.syscallEntry = r.getU64("scalars.syscallEntry");
    s.scalars.savedUserPc = r.getU64("scalars.savedUserPc");
    s.scalars.cycles = r.getU64("scalars.cycles");
    s.scalars.insnsSinceNoise = r.getU64("scalars.insnsSinceNoise");
    s.scalars.suppressConfirms = r.getU64("scalars.suppressConfirms");
    s.scalars.ibpbOnSyscall = r.getU8("scalars.ibpbOnSyscall") != 0;
    s.scalars.smtThread = r.getU8("scalars.smtThread");
    s.scalars.episodeId = r.getU64("scalars.episodeId");
    s.scalars.curEpisode = r.getU64("scalars.curEpisode");
    u64 classes = r.getCount(8, "scalars.attrib");
    if (r.ok() && classes != s.scalars.attrib.cycles.size()) {
        r.error = "cycle-attribution class count mismatch";
        return false;
    }
    for (u64 i = 0; r.ok() && i < classes; ++i)
        s.scalars.attrib.cycles[i] = r.getU64("scalars.attrib");
    return r.ok();
}

std::vector<u8>
encodeRegs(const MachineState& s)
{
    Writer w;
    w.putU64(s.regs.size());
    for (u64 v : s.regs)
        w.putU64(v);
    w.putU8(s.zf ? 1 : 0);
    w.putU8(s.cf ? 1 : 0);
    return w.out;
}

bool
decodeRegs(Reader& r, MachineState& s)
{
    u64 n = r.getCount(8, "regs");
    if (r.ok() && n != s.regs.size()) {
        r.error = "register count mismatch";
        return false;
    }
    for (u64 i = 0; r.ok() && i < n; ++i)
        s.regs[i] = r.getU64("regs");
    s.zf = r.getU8("flags.zf") != 0;
    s.cf = r.getU8("flags.cf") != 0;
    return r.ok();
}

std::vector<u8>
encodePmc(const MachineState& s)
{
    Writer w;
    w.putU64(s.pmc.size());
    for (u64 c : s.pmc)
        w.putU64(c);
    return w.out;
}

bool
decodePmc(Reader& r, MachineState& s)
{
    u64 n = r.getCount(8, "pmc");
    if (r.ok() && n != s.pmc.size()) {
        r.error = "pmc counter count mismatch";
        return false;
    }
    for (u64 i = 0; r.ok() && i < n; ++i)
        s.pmc[i] = r.getU64("pmc");
    return r.ok();
}

std::vector<u8>
encodeMsrs(const MachineState& s)
{
    Writer w;
    w.putU64(s.msrs.size());
    for (u32 index : sortedKeys(s.msrs)) {
        w.putU32(index);
        w.putU64(s.msrs.at(index));
    }
    return w.out;
}

bool
decodeMsrs(Reader& r, MachineState& s)
{
    u64 n = r.getCount(12, "msrs");
    for (u64 i = 0; r.ok() && i < n; ++i) {
        u32 index = r.getU32("msr.index");
        u64 value = r.getU64("msr.value");
        if (r.ok() && !s.msrs.emplace(index, value).second) {
            r.error = "duplicate msr index";
            return false;
        }
    }
    return r.ok();
}

std::vector<u8>
encodeCache(const mem::Cache::State& c)
{
    Writer w;
    w.putU64(c.lines.size());
    for (const auto& line : c.lines) {
        w.putU8(line.valid ? 1 : 0);
        w.putU64(line.tag);
        w.putU64(line.lastUse);
    }
    w.putU64(c.useClock);
    w.putU64(c.hits);
    w.putU64(c.misses);
    return w.out;
}

bool
decodeCache(Reader& r, mem::Cache::State& c, const char* what)
{
    u64 n = r.getCount(17, what);
    if (!r.ok())
        return false;
    c.lines.resize(static_cast<std::size_t>(n));
    for (u64 i = 0; r.ok() && i < n; ++i) {
        c.lines[i].valid = r.getU8(what) != 0;
        c.lines[i].tag = r.getU64(what);
        c.lines[i].lastUse = r.getU64(what);
    }
    c.useClock = r.getU64(what);
    c.hits = r.getU64(what);
    c.misses = r.getU64(what);
    return r.ok();
}

std::vector<u8>
encodeBtb(const MachineState& s)
{
    Writer w;
    w.putU64(s.btb.entries.size());
    for (const auto& e : s.btb.entries) {
        w.putU8(e.valid ? 1 : 0);
        w.putU64(e.tag);
        w.putU64(e.pred.sourceVa);
        w.putU8(static_cast<u8>(e.pred.type));
        w.putU64(static_cast<u64>(e.pred.relDelta));
        w.putU64(e.pred.absTarget);
        w.putU8(static_cast<u8>(e.pred.creator));
        w.putU8(e.pred.creatorThread);
        w.putU64(e.lastUse);
    }
    w.putU64(s.btb.useClock);
    return w.out;
}

bool
decodeBtb(Reader& r, MachineState& s)
{
    u64 n = r.getCount(44, "btb");
    if (!r.ok())
        return false;
    s.btb.entries.resize(static_cast<std::size_t>(n));
    for (u64 i = 0; r.ok() && i < n; ++i) {
        auto& e = s.btb.entries[i];
        e.valid = r.getU8("btb.valid") != 0;
        e.tag = r.getU64("btb.tag");
        e.pred.sourceVa = r.getU64("btb.sourceVa");
        u8 type = r.getU8("btb.type");
        if (r.ok() && type > static_cast<u8>(isa::BranchType::Return)) {
            r.error = "invalid branch type in btb entry";
            return false;
        }
        e.pred.type = static_cast<isa::BranchType>(type);
        e.pred.relDelta = static_cast<i64>(r.getU64("btb.relDelta"));
        e.pred.absTarget = r.getU64("btb.absTarget");
        u8 creator = r.getU8("btb.creator");
        if (r.ok() && creator > 1) {
            r.error = "invalid privilege in btb entry";
            return false;
        }
        e.pred.creator = static_cast<Privilege>(creator);
        e.pred.creatorThread = r.getU8("btb.creatorThread");
        e.lastUse = r.getU64("btb.lastUse");
    }
    s.btb.useClock = r.getU64("btb.useClock");
    return r.ok();
}

std::vector<u8>
encodeRsb(const MachineState& s)
{
    Writer w;
    w.putU64(s.rsb.slots.size());
    for (VAddr slot : s.rsb.slots)
        w.putU64(slot);
    w.putU64(s.rsb.top);
    w.putU64(s.rsb.depth);
    return w.out;
}

bool
decodeRsb(Reader& r, MachineState& s)
{
    u64 n = r.getCount(8, "rsb");
    if (!r.ok())
        return false;
    s.rsb.slots.resize(static_cast<std::size_t>(n));
    for (u64 i = 0; r.ok() && i < n; ++i)
        s.rsb.slots[i] = r.getU64("rsb.slot");
    s.rsb.top = r.getU64("rsb.top");
    s.rsb.depth = r.getU64("rsb.depth");
    if (r.ok() && n > 0 && (s.rsb.top >= n || s.rsb.depth > n)) {
        r.error = "rsb position out of range";
        return false;
    }
    return r.ok();
}

std::vector<u8>
encodePht(const MachineState& s)
{
    Writer w;
    w.putU64(s.pht.size());
    w.putBytes(s.pht.data(), s.pht.size());
    return w.out;
}

bool
decodePht(Reader& r, MachineState& s)
{
    u64 n = r.getCount(1, "pht");
    if (!r.ok())
        return false;
    s.pht.resize(static_cast<std::size_t>(n));
    return r.getBytes(s.pht.data(), n, "pht");
}

std::vector<u8>
encodeBhb(const MachineState& s)
{
    Writer w;
    w.putU64(s.bhb);
    return w.out;
}

bool
decodeBhb(Reader& r, MachineState& s)
{
    s.bhb = r.getU64("bhb");
    return r.ok();
}

std::vector<u8>
encodeNoiseRng(const MachineState& s)
{
    Writer w;
    for (u64 word : s.noiseRng)
        w.putU64(word);
    return w.out;
}

bool
decodeNoiseRng(Reader& r, MachineState& s)
{
    for (auto& word : s.noiseRng)
        word = r.getU64("noise_rng");
    return r.ok();
}

std::vector<u8>
encodeFrames(const MachineState& s)
{
    Writer w;
    w.putU64(s.frames->size());
    for (u64 frame_no : sortedKeys(*s.frames)) {
        w.putU64(frame_no);
        w.putBytes(s.frames->at(frame_no)->data(), kPageBytes);
    }
    return w.out;
}

bool
decodeFrames(Reader& r, MachineState& s)
{
    u64 n = r.getCount(8 + kPageBytes, "frames");
    auto frames = std::make_shared<mem::PhysicalMemory::FrameMap>();
    for (u64 i = 0; r.ok() && i < n; ++i) {
        u64 frame_no = r.getU64("frame.number");
        auto frame = std::make_shared<mem::PhysicalMemory::Frame>();
        if (!r.getBytes(frame->data(), kPageBytes, "frame.bytes"))
            return false;
        if (!frames->emplace(frame_no, std::move(frame)).second) {
            r.error = "duplicate frame number";
            return false;
        }
    }
    s.frames = std::move(frames);
    return r.ok();
}

void
encodeFlags(Writer& w, const mem::PageFlags& flags)
{
    u8 bits = 0;
    bits |= flags.present ? 1 : 0;
    bits |= flags.writable ? 2 : 0;
    bits |= flags.user ? 4 : 0;
    bits |= flags.executable ? 8 : 0;
    w.putU8(bits);
}

bool
decodeFlags(Reader& r, mem::PageFlags& flags)
{
    u8 bits = r.getU8("page.flags");
    if (r.ok() && (bits & ~0x0f) != 0) {
        r.error = "invalid page flag bits";
        return false;
    }
    flags.present = (bits & 1) != 0;
    flags.writable = (bits & 2) != 0;
    flags.user = (bits & 4) != 0;
    flags.executable = (bits & 8) != 0;
    return r.ok();
}

void
encodeEntryMap(Writer& w, const mem::PageTable::EntryMap& map)
{
    w.putU64(map.size());
    for (u64 key : sortedKeys(map)) {
        const auto& entry = map.at(key);
        w.putU64(key);
        w.putU64(entry.pa);
        encodeFlags(w, entry.flags);
    }
}

bool
decodeEntryMap(Reader& r, mem::PageTable::EntryMap& map, const char* what)
{
    u64 n = r.getCount(17, what);
    for (u64 i = 0; r.ok() && i < n; ++i) {
        u64 key = r.getU64(what);
        mem::PageTable::Entry entry;
        entry.pa = r.getU64(what);
        if (!decodeFlags(r, entry.flags))
            return false;
        if (!map.emplace(key, entry).second) {
            r.error = std::string("duplicate page-table key in ") + what;
            return false;
        }
    }
    return r.ok();
}

std::vector<u8>
encodePaging(const MachineState& s)
{
    Writer w;
    w.putU8(s.hasPageTable ? 1 : 0);
    encodeEntryMap(w, *s.ptSmall);
    encodeEntryMap(w, *s.ptHuge);
    return w.out;
}

bool
decodePaging(Reader& r, MachineState& s)
{
    s.hasPageTable = r.getU8("paging.present") != 0;
    auto small = std::make_shared<mem::PageTable::EntryMap>();
    auto huge = std::make_shared<mem::PageTable::EntryMap>();
    bool ok = decodeEntryMap(r, *small, "paging.small") &&
              decodeEntryMap(r, *huge, "paging.huge");
    s.ptSmall = std::move(small);
    s.ptHuge = std::move(huge);
    return ok;
}

std::vector<u8>
encodeLayout(const MachineState& s)
{
    Writer w;
    w.putU8(s.hasLayout ? 1 : 0);
    w.putU64(s.layout.imageBase);
    w.putU64(s.layout.physmapBase);
    w.putU64(s.layout.fdgetPosCallVa);
    w.putU64(s.layout.moduleNext);
    w.putU64(s.layout.imagePa);
    w.putU64(s.layout.bumpPa);
    for (u64 word : s.layout.rngState)
        w.putU64(word);
    return w.out;
}

bool
decodeLayout(Reader& r, MachineState& s)
{
    s.hasLayout = r.getU8("layout.present") != 0;
    s.layout.imageBase = r.getU64("layout.imageBase");
    s.layout.physmapBase = r.getU64("layout.physmapBase");
    s.layout.fdgetPosCallVa = r.getU64("layout.fdgetPosCallVa");
    s.layout.moduleNext = r.getU64("layout.moduleNext");
    s.layout.imagePa = r.getU64("layout.imagePa");
    s.layout.bumpPa = r.getU64("layout.bumpPa");
    for (auto& word : s.layout.rngState)
        word = r.getU64("layout.rng");
    return r.ok();
}

/** All section ids, in on-disk table order. */
constexpr SectionId kSectionOrder[] = {
    SectionId::Scalars, SectionId::Regs,     SectionId::Pmc,
    SectionId::Msrs,    SectionId::CacheL1I, SectionId::CacheL1D,
    SectionId::CacheL2, SectionId::CacheUop, SectionId::Btb,
    SectionId::Rsb,     SectionId::Pht,      SectionId::Bhb,
    SectionId::NoiseRng, SectionId::Frames,  SectionId::Paging,
    SectionId::Layout,
};

std::vector<u8>
encodeSection(const MachineState& s, SectionId id)
{
    switch (id) {
      case SectionId::Scalars: return encodeScalars(s);
      case SectionId::Regs: return encodeRegs(s);
      case SectionId::Pmc: return encodePmc(s);
      case SectionId::Msrs: return encodeMsrs(s);
      case SectionId::CacheL1I: return encodeCache(s.l1i);
      case SectionId::CacheL1D: return encodeCache(s.l1d);
      case SectionId::CacheL2: return encodeCache(s.l2);
      case SectionId::CacheUop: return encodeCache(s.uop);
      case SectionId::Btb: return encodeBtb(s);
      case SectionId::Rsb: return encodeRsb(s);
      case SectionId::Pht: return encodePht(s);
      case SectionId::Bhb: return encodeBhb(s);
      case SectionId::NoiseRng: return encodeNoiseRng(s);
      case SectionId::Frames: return encodeFrames(s);
      case SectionId::Paging: return encodePaging(s);
      case SectionId::Layout: return encodeLayout(s);
    }
    return {};
}

bool
decodeSection(Reader& r, MachineState& s, SectionId id)
{
    switch (id) {
      case SectionId::Scalars: return decodeScalars(r, s);
      case SectionId::Regs: return decodeRegs(r, s);
      case SectionId::Pmc: return decodePmc(r, s);
      case SectionId::Msrs: return decodeMsrs(r, s);
      case SectionId::CacheL1I: return decodeCache(r, s.l1i, "cache.l1i");
      case SectionId::CacheL1D: return decodeCache(r, s.l1d, "cache.l1d");
      case SectionId::CacheL2: return decodeCache(r, s.l2, "cache.l2");
      case SectionId::CacheUop: return decodeCache(r, s.uop, "cache.uop");
      case SectionId::Btb: return decodeBtb(r, s);
      case SectionId::Rsb: return decodeRsb(r, s);
      case SectionId::Pht: return decodePht(r, s);
      case SectionId::Bhb: return decodeBhb(r, s);
      case SectionId::NoiseRng: return decodeNoiseRng(r, s);
      case SectionId::Frames: return decodeFrames(r, s);
      case SectionId::Paging: return decodePaging(r, s);
      case SectionId::Layout: return decodeLayout(r, s);
    }
    r.error = "unknown section id";
    return false;
}

constexpr std::size_t kNumSections =
    sizeof(kSectionOrder) / sizeof(kSectionOrder[0]);
constexpr u64 kSectionTableEntryBytes = 4 + 4 + 8 + 8 + 8;
constexpr u64 kMaxUarchNameBytes = 256;

} // namespace

const char*
sectionName(SectionId id)
{
    switch (id) {
      case SectionId::Scalars: return "scalars";
      case SectionId::Regs: return "regs";
      case SectionId::Pmc: return "pmc";
      case SectionId::Msrs: return "msrs";
      case SectionId::CacheL1I: return "cache.l1i";
      case SectionId::CacheL1D: return "cache.l1d";
      case SectionId::CacheL2: return "cache.l2";
      case SectionId::CacheUop: return "cache.uop";
      case SectionId::Btb: return "btb";
      case SectionId::Rsb: return "rsb";
      case SectionId::Pht: return "pht";
      case SectionId::Bhb: return "bhb";
      case SectionId::NoiseRng: return "noise_rng";
      case SectionId::Frames: return "frames";
      case SectionId::Paging: return "paging";
      case SectionId::Layout: return "layout";
    }
    return "unknown";
}

namespace {

/** The total digest covers the header metadata as well as every payload
 *  byte, so a flipped version/uarch/installedBytes field is caught even
 *  though those live outside any section extent. */
Digest
totalDigestSeed(const std::string& uarch, u64 installed_bytes)
{
    Digest d;
    d.update64(kImageVersion);
    d.updateString(uarch);
    d.update64(installed_bytes);
    return d;
}

} // namespace

std::vector<u8>
serialize(const MachineState& state)
{
    std::vector<std::vector<u8>> payloads;
    payloads.reserve(kNumSections);
    Digest total = totalDigestSeed(state.uarch, state.installedBytes);
    for (SectionId id : kSectionOrder) {
        payloads.push_back(encodeSection(state, id));
        total.update(payloads.back());
    }

    Writer header;
    header.putBytes(kImageMagic, sizeof(kImageMagic));
    header.putU32(kImageVersion);
    header.putU32(static_cast<u32>(kNumSections));
    header.putU64(total.value());
    header.putString(state.uarch);
    header.putU64(state.installedBytes);

    u64 payload_base = header.out.size() +
                       kNumSections * kSectionTableEntryBytes;
    u64 offset = payload_base;
    for (std::size_t i = 0; i < kNumSections; ++i) {
        header.putU32(static_cast<u32>(kSectionOrder[i]));
        header.putU32(0);
        header.putU64(offset);
        header.putU64(payloads[i].size());
        header.putU64(Digest::of(payloads[i].data(), payloads[i].size()));
        offset += payloads[i].size();
    }

    std::vector<u8> image = std::move(header.out);
    image.reserve(offset);
    for (const auto& payload : payloads)
        image.insert(image.end(), payload.begin(), payload.end());
    return image;
}

namespace {

/** Shared header + section-table parsing for load() and inspect().
 *  On success the payload digests (per-section and total) are verified. */
bool
parseHeader(const std::vector<u8>& bytes, ImageInfo& info, std::string& error)
{
    Reader r(bytes.data(), 0, bytes.size());
    char magic[8];
    if (!r.getBytes(magic, sizeof(magic), "magic")) {
        error = r.error;
        return false;
    }
    if (std::memcmp(magic, kImageMagic, sizeof(magic)) != 0) {
        error = "bad magic (not a snapshot image)";
        return false;
    }
    info.version = r.getU32("version");
    if (r.ok() && info.version != kImageVersion) {
        error = "unsupported image version " + std::to_string(info.version);
        return false;
    }
    u32 sections = r.getU32("section count");
    if (r.ok() && sections != kNumSections) {
        error = "unexpected section count " + std::to_string(sections);
        return false;
    }
    info.totalDigest = r.getU64("total digest");
    info.uarch = r.getString(kMaxUarchNameBytes, "uarch name");
    info.installedBytes = r.getU64("installed bytes");
    if (!r.ok()) {
        error = r.error;
        return false;
    }

    u64 expected_offset = r.pos + u64{sections} * kSectionTableEntryBytes;
    info.sections.clear();
    for (u32 i = 0; i < sections; ++i) {
        SectionInfo si;
        si.id = r.getU32("section id");
        (void)r.getU32("section pad");
        si.offset = r.getU64("section offset");
        si.length = r.getU64("section length");
        si.digest = r.getU64("section digest");
        if (!r.ok()) {
            error = r.error;
            return false;
        }
        if (si.id != static_cast<u32>(kSectionOrder[i])) {
            error = "section table out of order at entry " +
                    std::to_string(i);
            return false;
        }
        si.name = sectionName(static_cast<SectionId>(si.id));
        if (si.offset != expected_offset ||
            si.length > bytes.size() - si.offset) {
            error = "section '" + si.name + "' extent out of bounds";
            return false;
        }
        expected_offset = si.offset + si.length;
        info.sections.push_back(si);
    }
    if (expected_offset != bytes.size()) {
        error = "trailing bytes after last section";
        return false;
    }

    Digest total = totalDigestSeed(info.uarch, info.installedBytes);
    for (const auto& si : info.sections) {
        u64 digest = Digest::of(bytes.data() + si.offset, si.length);
        if (digest != si.digest) {
            error = "section '" + si.name + "' digest mismatch";
            return false;
        }
        total.update(bytes.data() + si.offset, si.length);
    }
    if (total.value() != info.totalDigest) {
        error = "total digest mismatch";
        return false;
    }
    return true;
}

} // namespace

InspectResult
inspect(const std::vector<u8>& bytes)
{
    InspectResult result;
    result.ok = parseHeader(bytes, result.info, result.error);
    return result;
}

LoadResult
load(const std::vector<u8>& bytes)
{
    LoadResult result;
    ImageInfo info;
    if (!parseHeader(bytes, info, result.error))
        return result;

    result.state.uarch = info.uarch;
    result.state.installedBytes = info.installedBytes;
    for (const auto& si : info.sections) {
        Reader r(bytes.data(), si.offset, si.length);
        if (!decodeSection(r, result.state,
                           static_cast<SectionId>(si.id)) ||
            !r.ok()) {
            result.error = "section '" + si.name + "': " +
                           (r.error.empty() ? "decode failed" : r.error);
            result.state = MachineState{};
            return result;
        }
        if (r.pos != r.end) {
            result.error = "section '" + si.name + "' has trailing bytes";
            result.state = MachineState{};
            return result;
        }
    }
    result.ok = true;
    return result;
}

std::vector<ComponentDigest>
componentDigests(const MachineState& state)
{
    std::vector<ComponentDigest> digests;
    digests.reserve(kNumSections);
    for (SectionId id : kSectionOrder) {
        std::vector<u8> payload = encodeSection(state, id);
        digests.push_back(
            {sectionName(id), Digest::of(payload.data(), payload.size())});
    }
    return digests;
}

u64
stateDigest(const MachineState& state)
{
    Digest total = totalDigestSeed(state.uarch, state.installedBytes);
    for (SectionId id : kSectionOrder)
        total.update(encodeSection(state, id));
    return total.value();
}

bool
statesEqual(const MachineState& a, const MachineState& b)
{
    // Frames first: they are megabytes where every other section is
    // kilobytes, and states captured from a common snapshot share
    // untouched frames by pointer, so the common case is a pointer
    // compare per page with memcmp only on genuinely diverged copies.
    if (a.frames != b.frames) {
        if (a.frames->size() != b.frames->size())
            return false;
        for (const auto& [frame_no, frame_a] : *a.frames) {
            auto it = b.frames->find(frame_no);
            if (it == b.frames->end())
                return false;
            const auto& frame_b = it->second;
            if (frame_a == frame_b)
                continue;
            if (std::memcmp(frame_a->data(), frame_b->data(),
                            kPageBytes) != 0)
                return false;
        }
    }
    if (a.uarch != b.uarch || a.installedBytes != b.installedBytes)
        return false;
    for (SectionId id : kSectionOrder) {
        if (id == SectionId::Frames)
            continue;
        if (encodeSection(a, id) != encodeSection(b, id))
            return false;
    }
    return true;
}

std::string
roundTripError(const MachineState& state)
{
    std::vector<u8> first = serialize(state);
    LoadResult loaded = load(first);
    if (!loaded.ok)
        return "load rejected its own serialization: " + loaded.error;
    std::vector<u8> second = serialize(loaded.state);
    if (first == second)
        return "";

    // Name the first component whose bytes changed across the trip.
    std::vector<ComponentDigest> before = componentDigests(state);
    std::vector<ComponentDigest> after = componentDigests(loaded.state);
    for (std::size_t i = 0; i < before.size() && i < after.size(); ++i) {
        if (before[i].digest != after[i].digest)
            return "serialize∘load∘serialize not bit-identical: "
                   "component \"" + before[i].name + "\" changed";
    }
    return "serialize∘load∘serialize not bit-identical "
           "(image framing differs, components agree)";
}

} // namespace phantom::snap
