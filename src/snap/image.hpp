/**
 * @file
 * Versioned, digest-stamped binary snapshot images.
 *
 * Layout (all integers little-endian, independent of host endianness):
 *
 *   magic[8]        "PHANSNAP"
 *   u32 version     kImageVersion
 *   u32 sections    number of section-table entries
 *   u64 totalDigest FNV-1a over every section payload in table order
 *   u64 uarchLen + uarch bytes
 *   u64 installedBytes
 *   section table: sections x { u32 id, u32 pad, u64 offset,
 *                               u64 length, u64 digest }
 *   section payloads (contiguous, in table order)
 *
 * The loader is strict: bad magic, unknown version, unknown or duplicate
 * section ids, missing required sections, out-of-bounds or overlapping
 * extents, trailing bytes, digest mismatches, or any read past a section
 * end reject the image with a diagnostic instead of producing a machine
 * in an undefined state.
 */

#ifndef PHANTOM_SNAP_IMAGE_HPP
#define PHANTOM_SNAP_IMAGE_HPP

#include "snap/state.hpp"

#include <string>
#include <vector>

namespace phantom::snap {

inline constexpr char kImageMagic[8] = {'P', 'H', 'A', 'N',
                                        'S', 'N', 'A', 'P'};
inline constexpr u32 kImageVersion = 2;

/** Section identifiers (stable on-disk values). */
enum class SectionId : u32 {
    Scalars = 1,
    Regs = 2,
    Pmc = 3,
    Msrs = 4,
    CacheL1I = 5,
    CacheL1D = 6,
    CacheL2 = 7,
    CacheUop = 8,
    Btb = 9,
    Rsb = 10,
    Pht = 11,
    Bhb = 12,
    NoiseRng = 13,
    Frames = 14,
    Paging = 15,
    Layout = 16,
};

/** Human name of @p id ("scalars", "btb", ...); "unknown" if invalid. */
const char* sectionName(SectionId id);

/** Serialize @p state into an image. Deterministic: sorted key order
 *  everywhere, so serialize(load(serialize(s))) is bit-identical. */
std::vector<u8> serialize(const MachineState& state);

/** Result of a load attempt. */
struct LoadResult
{
    bool ok = false;
    std::string error;   ///< diagnostic when !ok
    MachineState state;  ///< valid only when ok
};

/** Strictly parse and verify @p bytes into a MachineState. */
LoadResult load(const std::vector<u8>& bytes);

/** One section-table entry as read from an image. */
struct SectionInfo
{
    u32 id = 0;
    std::string name;
    u64 offset = 0;
    u64 length = 0;
    u64 digest = 0;
};

/** Image header + section table (for snap_inspect). */
struct ImageInfo
{
    u32 version = 0;
    std::string uarch;
    u64 installedBytes = 0;
    u64 totalDigest = 0;
    std::vector<SectionInfo> sections;
};

/** Result of a header inspection. */
struct InspectResult
{
    bool ok = false;
    std::string error;
    ImageInfo info;
};

/** Parse header + section table and verify digests without decoding
 *  payloads (tolerates payload-level decode problems load() would not). */
InspectResult inspect(const std::vector<u8>& bytes);

/**
 * Mid-run round-trip check: serialize @p state, load it back, serialize
 * again and require bit-identity (the PHANSNAP sorted-key guarantee).
 * @return "" on success, else a diagnostic naming the failing step or
 * the first component whose digest changed across the trip. This is the
 * snapshot oracle of the differential fuzz campaign (FUZZING.md).
 */
std::string roundTripError(const MachineState& state);

} // namespace phantom::snap

#endif // PHANTOM_SNAP_IMAGE_HPP
