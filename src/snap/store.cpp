#include "snap/store.hpp"

#include "snap/image.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace phantom::snap {

namespace {

std::string
envSnapDir()
{
    const char* dir = std::getenv("PHANTOM_SNAP_DIR");
    return dir != nullptr ? std::string(dir) : std::string();
}

/** Flatten @p key into a safe filename component. */
std::string
sanitizeKey(const std::string& key)
{
    std::string out;
    out.reserve(key.size());
    for (char c : key) {
        bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
        out.push_back(safe ? c : '_');
    }
    return out;
}

} // namespace

SnapshotStore::SnapshotStore()
    : SnapshotStore(envSnapDir())
{
}

SnapshotStore::SnapshotStore(std::string dir)
    : dir_(std::move(dir))
{
}

std::string
SnapshotStore::pathFor(const std::string& key) const
{
    return dir_ + "/" + sanitizeKey(key) + ".snap";
}

std::shared_ptr<const MachineState>
SnapshotStore::find(const std::string& key)
{
    auto it = states_.find(key);
    if (it != states_.end()) {
        ++stats_.hits;
        return it->second;
    }
    if (!dir_.empty()) {
        std::ifstream in(pathFor(key), std::ios::binary);
        if (in) {
            std::vector<u8> bytes(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            LoadResult result = load(bytes);
            // A corrupt or stale image is treated as a plain miss: the
            // caller rebuilds and insert() rewrites the file.
            if (result.ok) {
                auto state = std::make_shared<const MachineState>(
                    std::move(result.state));
                states_.emplace(key, state);
                stats_.stateBytes += stateBytes(*state);
                ++stats_.imageLoads;
                ++stats_.hits;
                return state;
            }
        }
    }
    ++stats_.misses;
    return nullptr;
}

void
SnapshotStore::insert(const std::string& key,
                      std::shared_ptr<const MachineState> state)
{
    if (state == nullptr)
        return;
    auto [it, inserted] = states_.insert_or_assign(key, state);
    (void)it;
    ++stats_.captures;
    stats_.stateBytes += stateBytes(*state);
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        std::vector<u8> image = serialize(*state);
        std::ofstream out(pathFor(key),
                          std::ios::binary | std::ios::trunc);
        if (out) {
            out.write(reinterpret_cast<const char*>(image.data()),
                      static_cast<std::streamsize>(image.size()));
            if (out)
                ++stats_.imageStores;
        }
    }
}

bool
snapshotReuseEnabled()
{
    const char* v = std::getenv("PHANTOM_SNAP");
    return v == nullptr || std::string(v) != "0";
}

namespace {
thread_local SnapshotStore* tActiveStore = nullptr;
} // namespace

SnapshotStore*
activeSnapshotStore()
{
    return tActiveStore;
}

void
setActiveSnapshotStore(SnapshotStore* store)
{
    tActiveStore = store;
}

} // namespace phantom::snap
