/**
 * @file
 * Keyed snapshot store + the ambient per-shard store pointer.
 *
 * A SnapshotStore maps experiment keys — e.g. "(µarch, train-kind,
 * victim-kind, seed)" flattened to a string — to captured MachineStates,
 * so a warmed machine is built once per key and forked/restored for
 * every subsequent observation. Stores are strictly per-shard (no
 * locking; frames are shared copy-on-write, which is not synchronized).
 *
 * Environment:
 *  - PHANTOM_SNAP      "0" disables snapshot reuse (default: enabled)
 *  - PHANTOM_SNAP_DIR  when set, states are persisted as snapshot images
 *    under the directory on insert and revived from it on a miss, so
 *    warm-up survives process restarts.
 *
 * The ambient store mirrors obs::activeTraceSink(): a thread-local
 * pointer installed by the campaign's worker hooks, consulted by
 * StageExperiment when deciding whether to reuse warm state.
 */

#ifndef PHANTOM_SNAP_STORE_HPP
#define PHANTOM_SNAP_STORE_HPP

#include "snap/state.hpp"

#include <memory>
#include <string>
#include <unordered_map>

namespace phantom::snap {

/** Counters a store accumulates; exported as snap.* bench metrics. */
struct StoreStats
{
    u64 captures = 0;     ///< states inserted into the store
    u64 hits = 0;         ///< find() served a state
    u64 misses = 0;       ///< find() had nothing (fresh build required)
    u64 restores = 0;     ///< in-place machine restores from a state
    u64 forks = 0;        ///< independent machines forked from a state
    u64 stateBytes = 0;   ///< approximate footprint of stored states
    u64 imageLoads = 0;   ///< states revived from PHANTOM_SNAP_DIR
    u64 imageStores = 0;  ///< states persisted to PHANTOM_SNAP_DIR

    void
    merge(const StoreStats& other)
    {
        captures += other.captures;
        hits += other.hits;
        misses += other.misses;
        restores += other.restores;
        forks += other.forks;
        stateBytes += other.stateBytes;
        imageLoads += other.imageLoads;
        imageStores += other.imageStores;
    }
};

/** Per-shard snapshot cache keyed by experiment identity. */
class SnapshotStore
{
  public:
    /** @param dir persistence directory; empty = in-memory only.
     *  Defaults to PHANTOM_SNAP_DIR. */
    SnapshotStore();
    explicit SnapshotStore(std::string dir);

    /**
     * Look up @p key; counts a hit or miss. On a miss with a persistence
     * directory configured, attempts to revive the state from disk
     * (counts as a hit + imageLoad when the image is valid).
     */
    std::shared_ptr<const MachineState> find(const std::string& key);

    /** Insert @p state under @p key (and persist it when configured). */
    void insert(const std::string& key,
                std::shared_ptr<const MachineState> state);

    StoreStats& stats() { return stats_; }
    const StoreStats& stats() const { return stats_; }

    std::size_t size() const { return states_.size(); }

  private:
    std::string pathFor(const std::string& key) const;

    std::unordered_map<std::string, std::shared_ptr<const MachineState>>
        states_;
    StoreStats stats_;
    std::string dir_;
};

/** True unless PHANTOM_SNAP=0: gates warm-state reuse globally. */
bool snapshotReuseEnabled();

/** The calling thread's ambient store (null when none installed). */
SnapshotStore* activeSnapshotStore();

/** Install @p store as the calling thread's ambient store. */
void setActiveSnapshotStore(SnapshotStore* store);

} // namespace phantom::snap

#endif // PHANTOM_SNAP_STORE_HPP
