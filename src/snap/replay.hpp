/**
 * @file
 * Replay / divergence checker.
 *
 * Forks two machines from the same snapshot and runs them in lockstep,
 * comparing full state digests at window boundaries. On the first
 * mismatching window, both runs are re-forked from the last agreeing
 * checkpoint and single-stepped to pinpoint the first divergent
 * instruction, its cycle counts, and the components whose digests
 * differ. A clean pass turns the simulator's determinism guarantee into
 * a machine-checked property instead of an assumption.
 */

#ifndef PHANTOM_SNAP_REPLAY_HPP
#define PHANTOM_SNAP_REPLAY_HPP

#include "snap/state.hpp"

#include <string>
#include <vector>

namespace phantom::snap {

/** Replay parameters. */
struct ReplayOptions
{
    u64 maxInsns = 4096;    ///< total instructions to replay
    u64 windowInsns = 64;   ///< digest-comparison window size

    /**
     * Fault injection for tests: before running this window index,
     * flip a register bit on run B. ~0 disables. This proves the
     * checker detects and localizes real divergence.
     */
    u64 perturbAtWindow = ~0ull;
};

/** Outcome of a replay run. */
struct DivergenceReport
{
    bool diverged = false;
    u64 windowsCompared = 0;
    u64 insnsReplayed = 0;

    // Valid only when diverged:
    u64 divergentWindow = 0;   ///< first window whose digests differ
    u64 divergentInsn = 0;     ///< first divergent instruction index
    u64 divergentCycleA = 0;   ///< run A clock at divergence
    u64 divergentCycleB = 0;   ///< run B clock at divergence
    std::vector<std::string> divergentComponents;

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/**
 * Fork two machines from @p state and replay them in lockstep.
 * @p config must describe the geometry @p state was captured from.
 */
DivergenceReport checkDivergence(const MachineState& state,
                                 const cpu::MicroarchConfig& config,
                                 const ReplayOptions& options = {});

} // namespace phantom::snap

#endif // PHANTOM_SNAP_REPLAY_HPP
