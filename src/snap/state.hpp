/**
 * @file
 * In-memory machine snapshots.
 *
 * A MachineState is a complete, self-contained copy of one simulated
 * machine: scalar execution state, architectural registers, PMC bank,
 * MSR file, cache hierarchy + µop-cache tag arrays, BPU tables
 * (BTB/RSB/PHT/BHB), the noise-RNG stream position, the sparse physical
 * memory frames, the active page table, and the kernel/process layout.
 *
 * Physical frames are *shared* with the captured machine through
 * reference-counted pages: capture is O(mapped pages) pointer copies,
 * and the live machine copy-on-writes any frame it subsequently dirties
 * (mem::PhysicalMemory::frameForWrite). Restoring or forking from a
 * state is therefore O(dirty pages), which is what makes warm-once /
 * fork-many experiment loops cheap.
 *
 * Sharing is not synchronized: a MachineState must only be used by the
 * shard that captured it (snapshot stores are strictly per-shard).
 */

#ifndef PHANTOM_SNAP_STATE_HPP
#define PHANTOM_SNAP_STATE_HPP

#include "cpu/machine.hpp"
#include "os/kernel.hpp"
#include "sim/digest.hpp"

#include <memory>
#include <string>
#include <vector>

namespace phantom::snap {

/** Complete captured machine state. */
struct MachineState
{
    /** MicroarchConfig::name of the captured machine (image metadata;
     *  fork() takes the config explicitly so modified configs work). */
    std::string uarch;
    u64 installedBytes = 0;

    cpu::Machine::ScalarState scalars;
    std::array<u64, isa::kNumRegs> regs{};
    bool zf = false;
    bool cf = false;
    cpu::Pmc::Counters pmc{};
    cpu::MsrFile::ValueMap msrs;

    mem::Cache::State l1i, l1d, l2, uop;
    bpu::Btb::State btb;
    bpu::Rsb::State rsb;
    std::vector<u8> pht;
    u64 bhb = 0;
    u64 noiseRng[Rng::kStateWords] = {};

    // The frame map and page-table entry maps are held by pointer and
    // shared copy-on-write with live machines: capture and restore are
    // O(1) pointer swaps, and whichever side mutates first clones its
    // map. Never null — empty maps are allocated by default.
    mem::PhysicalMemory::FrameMapPtr frames =
        std::make_shared<mem::PhysicalMemory::FrameMap>();

    bool hasPageTable = false;
    mem::PageTable::EntryMapPtr ptSmall =
        std::make_shared<mem::PageTable::EntryMap>();
    mem::PageTable::EntryMapPtr ptHuge =
        std::make_shared<mem::PageTable::EntryMap>();

    bool hasLayout = false;
    os::Kernel::LayoutState layout;
};

/** Name + digest of one state component (divergence reporting). */
struct ComponentDigest
{
    std::string name;
    u64 digest = 0;
};

/**
 * Capture @p machine (and its active page table, if installed) into a
 * fresh MachineState. @p kernel, when given, contributes the
 * kernel/process layout scalars so the state can rebuild a Testbed.
 */
MachineState capture(cpu::Machine& machine,
                     const os::Kernel* kernel = nullptr);

/**
 * Restore @p state into @p machine. The machine must have been built
 * from the same microarch config (table geometries must match). The
 * machine's active page table, when installed, is overwritten with the
 * captured mappings.
 */
void restore(cpu::Machine& machine, const MachineState& state);

/**
 * A self-contained forked machine: the clone plus its owned page table
 * (cpu::Machine holds page tables non-owning).
 */
struct ForkedMachine
{
    std::unique_ptr<cpu::Machine> machine;
    std::unique_ptr<mem::PageTable> pageTable;
};

/**
 * Spawn an independent machine from @p state — O(dirty pages): frames
 * are shared copy-on-write, everything else is copied. @p config must
 * describe the same geometries the state was captured from.
 */
ForkedMachine fork(const MachineState& state,
                   const cpu::MicroarchConfig& config);

/** Per-component digests of @p state, in a stable order. */
std::vector<ComponentDigest> componentDigests(const MachineState& state);

/** Digest over every component (the image's total digest). */
u64 stateDigest(const MachineState& state);

/**
 * Exact deep equality of two states. Copy-on-write aware: frames the
 * two states share by pointer (captures descending from one common
 * snapshot) compare in O(1) each, so checking two forks of the same
 * machine costs O(dirty pages) — far cheaper than comparing digests or
 * serializations, and collision-free.
 */
bool statesEqual(const MachineState& a, const MachineState& b);

/** Approximate in-memory footprint of @p state in bytes (metrics). */
u64 stateBytes(const MachineState& state);

/** The registered MicroarchConfig named @p name, if any. */
const cpu::MicroarchConfig* resolveConfig(const std::string& name);

} // namespace phantom::snap

#endif // PHANTOM_SNAP_STATE_HPP
