#include "snap/replay.hpp"

#include <algorithm>

namespace phantom::snap {

namespace {

void
perturb(cpu::Machine& machine)
{
    machine.regs().write(0, machine.regs().read(0) ^ 1);
}

/**
 * Re-fork both runs from @p checkpoint and single-step them to find the
 * first instruction whose post-state digests differ. @p base_insn is the
 * instruction index of the checkpoint; @p perturb_b re-applies the
 * fault-injection this window received in the lockstep run.
 */
void
pinpoint(const MachineState& checkpoint, const cpu::MicroarchConfig& config,
         u64 base_insn, u64 window, bool perturb_b, DivergenceReport& report)
{
    ForkedMachine a = fork(checkpoint, config);
    ForkedMachine b = fork(checkpoint, config);
    if (perturb_b)
        perturb(*b.machine);

    for (u64 step = 0; step <= window; ++step) {
        MachineState sa = capture(*a.machine);
        MachineState sb = capture(*b.machine);
        if (!statesEqual(sa, sb)) {
            report.divergentInsn = base_insn + step;
            report.divergentCycleA = sa.scalars.cycles;
            report.divergentCycleB = sb.scalars.cycles;
            auto da = componentDigests(sa);
            auto db = componentDigests(sb);
            for (std::size_t i = 0; i < da.size(); ++i)
                if (da[i].digest != db[i].digest)
                    report.divergentComponents.push_back(da[i].name);
            return;
        }
        if (step < window) {
            a.machine->run(1);
            b.machine->run(1);
        }
    }
    // The per-window digests differed but single-stepping agreed — the
    // divergence is in run-exit behaviour; report the window boundary.
    report.divergentInsn = base_insn + window;
}

} // namespace

std::string
DivergenceReport::summary() const
{
    if (!diverged)
        return "deterministic: " + std::to_string(insnsReplayed) +
               " insns, " + std::to_string(windowsCompared) +
               " windows, zero drift";
    std::string components;
    for (const auto& name : divergentComponents)
        components += (components.empty() ? "" : ",") + name;
    return "DIVERGED at insn " + std::to_string(divergentInsn) +
           " (window " + std::to_string(divergentWindow) + ", cycles " +
           std::to_string(divergentCycleA) + " vs " +
           std::to_string(divergentCycleB) + "), components: " +
           (components.empty() ? "none" : components);
}

DivergenceReport
checkDivergence(const MachineState& state, const cpu::MicroarchConfig& config,
                const ReplayOptions& options)
{
    DivergenceReport report;
    if (options.windowInsns == 0 || options.maxInsns == 0)
        return report;

    ForkedMachine a = fork(state, config);
    ForkedMachine b = fork(state, config);

    // Checkpoint of the last agreeing window boundary; shares frames with
    // the snapshot/machines, so keeping it is O(pages) pointers.
    MachineState checkpoint = state;
    u64 done = 0;
    u64 window_index = 0;
    while (done < options.maxInsns) {
        u64 window = std::min(options.windowInsns, options.maxInsns - done);
        bool perturb_b = window_index == options.perturbAtWindow;
        if (perturb_b)
            perturb(*b.machine);

        cpu::RunResult ra = a.machine->run(window);
        cpu::RunResult rb = b.machine->run(window);
        done += std::max(ra.instructions, rb.instructions);
        ++report.windowsCompared;

        // Exact COW-aware equality: both forks descend from the same
        // snapshot, so agreeing windows compare in O(dirty pages).
        MachineState sa = capture(*a.machine);
        MachineState sb = capture(*b.machine);
        if (!statesEqual(sa, sb)) {
            report.diverged = true;
            report.divergentWindow = window_index;
            pinpoint(checkpoint, config, done > window ? done - window : 0,
                     window, perturb_b, report);
            break;
        }
        checkpoint = std::move(sa);
        ++window_index;

        // Both runs left the window the same way; a halt or fault ends
        // the replay (identical digests guarantee identical exits).
        if (ra.reason != cpu::ExitReason::InsnLimit)
            break;
    }
    report.insnsReplayed = done;
    return report;
}

} // namespace phantom::snap
