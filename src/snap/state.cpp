#include "snap/state.hpp"

#include "cpu/microarch.hpp"
#include "obs/prof.hpp"
#include "snap/store.hpp"

#include <cassert>

namespace phantom::snap {

MachineState
capture(cpu::Machine& machine, const os::Kernel* kernel)
{
    PROF_SCOPE(SnapCapture);
    MachineState s;
    s.uarch = machine.config().name;
    s.installedBytes = machine.physMem().installedBytes();

    s.scalars = machine.scalarState();
    for (u8 r = 0; r < isa::kNumRegs; ++r)
        s.regs[r] = machine.regs().read(r);
    s.zf = machine.flags().zf;
    s.cf = machine.flags().cf;
    s.pmc = machine.pmc().counters();
    s.msrs = machine.msrs().values();

    s.l1i = machine.caches().l1i().state();
    s.l1d = machine.caches().l1d().state();
    s.l2 = machine.caches().l2().state();
    s.uop = machine.uopCache().tagCache().state();

    s.btb = machine.bpu().btb().state();
    s.rsb = machine.bpu().rsb().state();
    s.pht = machine.bpu().pht().counters();
    s.bhb = machine.bpu().bhb().value();
    machine.noise().rng().stateWords(s.noiseRng);

    s.frames = machine.physMem().shareFrames();

    if (const mem::PageTable* table = machine.pageTable()) {
        s.hasPageTable = true;
        s.ptSmall = table->shareSmall();
        s.ptHuge = table->shareHuge();
    }
    if (kernel != nullptr) {
        s.hasLayout = true;
        s.layout = kernel->layoutState();
    }
    return s;
}

void
restore(cpu::Machine& machine, const MachineState& state)
{
    PROF_SCOPE(SnapRestore);
    assert(machine.config().name == state.uarch);
    assert(machine.physMem().installedBytes() == state.installedBytes);

    machine.setScalarState(state.scalars);
    for (u8 r = 0; r < isa::kNumRegs; ++r)
        machine.regs().write(r, state.regs[r]);
    machine.flags().zf = state.zf;
    machine.flags().cf = state.cf;
    machine.pmc().setCounters(state.pmc);
    machine.msrs().setValues(state.msrs);

    machine.caches().l1i().setState(state.l1i);
    machine.caches().l1d().setState(state.l1d);
    machine.caches().l2().setState(state.l2);
    machine.uopCache().tagCache().setState(state.uop);

    machine.bpu().btb().setState(state.btb);
    machine.bpu().rsb().setState(state.rsb);
    machine.bpu().pht().setCounters(state.pht);
    machine.bpu().bhb().setValue(state.bhb);
    machine.noise().rng().setStateWords(state.noiseRng);

    // Shares every captured frame; the machine (and any other adopter)
    // copy-on-writes the ones it subsequently dirties.
    machine.physMem().adoptFrames(state.frames);

    if (state.hasPageTable && machine.pageTable() != nullptr)
        machine.pageTable()->adoptEntries(state.ptSmall, state.ptHuge);

    // The predecoded-instruction cache is derived state: it is not part
    // of MachineState (PHANSNAP images must not carry it), and the
    // frames adopted above bypass the physical-write listener, so drop
    // it wholesale — the restored machine re-decodes cold, which is
    // bit-identical by construction.
    machine.decodeCache().flushAll();
}

ForkedMachine
fork(const MachineState& state, const cpu::MicroarchConfig& config)
{
    PROF_SCOPE(SnapFork);
    assert(config.name == state.uarch);
    ForkedMachine forked;
    forked.machine = std::make_unique<cpu::Machine>(
        config, state.installedBytes, /*seed=*/0);
    if (state.hasPageTable) {
        forked.pageTable = std::make_unique<mem::PageTable>();
        forked.machine->setPageTable(forked.pageTable.get());
    }
    restore(*forked.machine, state);
    if (SnapshotStore* store = activeSnapshotStore())
        ++store->stats().forks;
    return forked;
}

u64
stateBytes(const MachineState& state)
{
    u64 bytes = 0;
    bytes += state.frames->size() * (kPageBytes + sizeof(u64));
    bytes += state.l1i.lines.size() * sizeof(mem::Cache::Line);
    bytes += state.l1d.lines.size() * sizeof(mem::Cache::Line);
    bytes += state.l2.lines.size() * sizeof(mem::Cache::Line);
    bytes += state.uop.lines.size() * sizeof(mem::Cache::Line);
    bytes += state.btb.entries.size() * sizeof(bpu::Btb::Entry);
    bytes += state.rsb.slots.size() * sizeof(VAddr);
    bytes += state.pht.size();
    bytes += state.msrs.size() * (sizeof(u32) + sizeof(u64));
    bytes += (state.ptSmall->size() + state.ptHuge->size()) *
             (sizeof(u64) + sizeof(mem::PageTable::Entry));
    bytes += sizeof(MachineState);
    return bytes;
}

const cpu::MicroarchConfig*
resolveConfig(const std::string& name)
{
    static const std::vector<cpu::MicroarchConfig> kConfigs =
        cpu::allMicroarchs();
    for (const auto& config : kConfigs)
        if (config.name == name)
            return &config;
    return nullptr;
}

} // namespace phantom::snap
