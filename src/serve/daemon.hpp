/**
 * @file
 * TCP front-end for the experiment Server.
 *
 * A Daemon binds 127.0.0.1:<port> (port 0 picks an ephemeral port,
 * reported by port()), accepts connections on a background thread, and
 * answers one request per connection (always `Connection: close`):
 *
 *   GET  /healthz   liveness           → 200 kServeHealthSchema
 *   GET  /statsz    queue/snap/metrics → 200 kServeStatsSchema
 *   GET  /metricsz  Prometheus text    → 200 text/plain; version=0.0.4
 *   POST /run       experiment spec    → 200 phantom-bench-results/v2
 *                                      | 400/413/429/504 kServeErrorSchema
 *
 * Anything else is a 404 (unknown target) or 405 (wrong method); a
 * garbled request head gets the status parseRequestHead() chose
 * (400/413/431/501/505). The daemon owns no experiment state — every
 * policy decision (admission, batching, deadlines) lives in Server.
 *
 * Every connection opens a Server request context at accept (the
 * monotonic id comes back in the X-Phantom-Request-Id header and in
 * error bodies), stamps HeadParsed/Serialized/Written on its timeline,
 * and closes it after the response bytes are on the wire — which is
 * what feeds the access log and /metricsz stage histograms.
 */

#ifndef PHANTOM_SERVE_DAEMON_HPP
#define PHANTOM_SERVE_DAEMON_HPP

#include "serve/http.hpp"
#include "serve/server.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace phantom::serve {

class Daemon
{
  public:
    /**
     * Bind and start accepting. Throws std::runtime_error when the
     * port cannot be bound (e.g. already in use).
     */
    Daemon(Server& server, int port, HttpLimits limits = {});
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /** The bound port (resolves port 0 to the kernel's choice). */
    int port() const { return port_; }

    /** Stop accepting, join every connection thread. Idempotent. */
    void stop();

    /** Route one parsed request; exposed for direct (socket-free) use.
     *  Opens and closes its own request context. */
    HttpResponse handle(const HttpRequest& request);

    /** As handle(), against a caller-owned context: routes, stamps the
     *  timeline, embeds @p ctx's id in error bodies and the
     *  X-Phantom-Request-Id header — but leaves finishRequest() (and
     *  the Written mark) to the caller, who knows when the bytes hit
     *  the wire. */
    HttpResponse handle(const HttpRequest& request, RequestContext& ctx);

  private:
    void acceptLoop();
    void serveConnection(int fd);
    void reapFinished();

    Server& server_;
    HttpLimits limits_;
    int listenFd_ = -1;
    int port_ = 0;
    std::atomic<bool> stopping_{false};
    std::thread acceptor_;
    std::mutex connectionsMutex_;
    std::vector<std::thread> connections_;
    /** Ids of connection threads that have run to completion; the
     *  acceptor joins these between accepts so a long-lived daemon
     *  does not accumulate one un-joined stack per past connection. */
    std::vector<std::thread::id> finished_;
};

} // namespace phantom::serve

#endif // PHANTOM_SERVE_DAEMON_HPP
