#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>

namespace phantom::serve {

namespace {

bool
isTokenChar(char c)
{
    // RFC 7230 token characters; enough for methods and header names.
    if (std::isalnum(static_cast<unsigned char>(c)))
        return true;
    return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char& c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

std::string_view
trimOws(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
        s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t'))
        s.remove_suffix(1);
    return s;
}

const std::string*
findHeader(const std::vector<std::pair<std::string, std::string>>& headers,
           const std::string& name)
{
    for (const auto& [key, value] : headers)
        if (key == name)
            return &value;
    return nullptr;
}

HttpParseResult
parseFailure(int status, std::string error)
{
    HttpParseResult r;
    r.ok = false;
    r.status = status;
    r.error = std::move(error);
    return r;
}

} // namespace

const std::string*
HttpRequest::header(const std::string& name) const
{
    return findHeader(headers, name);
}

const std::string*
HttpResponse::header(const std::string& name) const
{
    return findHeader(headers, name);
}

const char*
statusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
      case 503: return "Service Unavailable";
      case 504: return "Gateway Timeout";
      case 505: return "HTTP Version Not Supported";
    }
    return "Unknown";
}

std::size_t
findHeadEnd(std::string_view data)
{
    std::size_t pos = data.find("\r\n\r\n");
    return pos == std::string_view::npos ? std::string_view::npos : pos + 4;
}

HttpParseResult
parseRequestHead(std::string_view data, HttpRequest& out,
                 const HttpLimits& limits)
{
    out = HttpRequest{};
    std::size_t head_end = findHeadEnd(data);
    if (head_end == std::string_view::npos)
        return parseFailure(400, "truncated head (no blank line)");
    if (head_end > limits.maxRequestLine + limits.maxHeaderBytes)
        return parseFailure(431, "head exceeds size limits");
    std::string_view head = data.substr(0, head_end);

    // ---- Request line: METHOD SP TARGET SP HTTP/x.y ------------------
    std::size_t line_end = head.find("\r\n");
    std::string_view line = head.substr(0, line_end);
    if (line.size() > limits.maxRequestLine)
        return parseFailure(431, "request line too long");
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 = sp1 == std::string_view::npos
                          ? std::string_view::npos
                          : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos)
        return parseFailure(400, "malformed request line");
    std::string_view method = line.substr(0, sp1);
    std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::string_view version = line.substr(sp2 + 1);

    if (method.empty())
        return parseFailure(400, "empty method");
    for (char c : method)
        if (!isTokenChar(c))
            return parseFailure(400, "non-token byte in method");
    if (target.empty() || target[0] != '/')
        return parseFailure(400, "target must be origin-form (\"/...\")");
    for (char c : target)
        if (static_cast<unsigned char>(c) <= 0x20 ||
            static_cast<unsigned char>(c) == 0x7f)
            return parseFailure(400, "control byte in target");
    if (version != "HTTP/1.1" && version != "HTTP/1.0")
        return parseFailure(505, "unsupported protocol version");

    out.method = std::string(method);
    out.target = std::string(target);
    out.version = std::string(version);

    // ---- Headers -----------------------------------------------------
    HttpParseResult result;
    result.headBytes = head_end;
    bool have_content_length = false;
    std::size_t pos = line_end + 2;
    while (pos + 2 <= head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        std::string_view header_line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (header_line.empty())
            break;   // blank line: end of head
        std::size_t colon = header_line.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return parseFailure(400, "header line without name:");
        std::string_view name = header_line.substr(0, colon);
        for (char c : name)
            if (!isTokenChar(c))
                return parseFailure(400, "non-token byte in header name");
        std::string_view value = trimOws(header_line.substr(colon + 1));
        for (char c : value)
            if ((static_cast<unsigned char>(c) < 0x20 && c != '\t') ||
                static_cast<unsigned char>(c) == 0x7f)
                return parseFailure(400, "control byte in header value");
        std::string lower = toLower(name);

        if (lower == "transfer-encoding")
            return parseFailure(501, "chunked transfer coding unsupported");
        if (lower == "content-length") {
            if (have_content_length)
                return parseFailure(400, "duplicate Content-Length");
            have_content_length = true;
            if (value.empty())
                return parseFailure(400, "empty Content-Length");
            u64 length = 0;
            for (char c : value) {
                if (!std::isdigit(static_cast<unsigned char>(c)))
                    return parseFailure(400, "non-digit Content-Length");
                if (length > (~u64{0} - 9) / 10)
                    return parseFailure(413, "Content-Length overflows");
                length = length * 10 + static_cast<u64>(c - '0');
            }
            if (length > limits.maxBodyBytes)
                return parseFailure(413, "declared body exceeds limit");
            result.contentLength = static_cast<std::size_t>(length);
        }
        out.headers.emplace_back(std::move(lower), std::string(value));
    }

    result.ok = true;
    result.status = 200;
    return result;
}

namespace {

std::string
serializeHead(const std::string& start_line,
              const std::vector<std::pair<std::string, std::string>>& headers,
              std::size_t body_bytes)
{
    std::string out = start_line;
    out += "\r\n";
    bool have_length = false;
    bool have_connection = false;
    for (const auto& [name, value] : headers) {
        out += name;
        out += ": ";
        out += value;
        out += "\r\n";
        std::string lower = toLower(name);
        have_length = have_length || lower == "content-length";
        have_connection = have_connection || lower == "connection";
    }
    if (!have_length) {
        out += "Content-Length: ";
        out += std::to_string(body_bytes);
        out += "\r\n";
    }
    if (!have_connection)
        out += "Connection: close\r\n";
    out += "\r\n";
    return out;
}

} // namespace

std::string
serializeRequest(const HttpRequest& request)
{
    std::string start = request.method + " " + request.target + " " +
        (request.version.empty() ? "HTTP/1.1" : request.version);
    return serializeHead(start, request.headers, request.body.size()) +
        request.body;
}

std::string
serializeResponse(const HttpResponse& response)
{
    std::string start = "HTTP/1.1 " + std::to_string(response.status) +
        " " + statusReason(response.status);
    return serializeHead(start, response.headers, response.body.size()) +
        response.body;
}

bool
parseResponse(std::string_view data, HttpResponse& out, std::string* error)
{
    out = HttpResponse{};
    std::size_t head_end = findHeadEnd(data);
    if (head_end == std::string_view::npos) {
        if (error != nullptr)
            *error = "truncated response head";
        return false;
    }
    std::string_view head = data.substr(0, head_end);
    std::size_t line_end = head.find("\r\n");
    std::string_view line = head.substr(0, line_end);
    // "HTTP/1.1 SP 3DIGIT SP reason"
    if (line.size() < 12 || line.compare(0, 5, "HTTP/") != 0 ||
        line[8] != ' ' ||
        !std::isdigit(static_cast<unsigned char>(line[9])) ||
        !std::isdigit(static_cast<unsigned char>(line[10])) ||
        !std::isdigit(static_cast<unsigned char>(line[11]))) {
        if (error != nullptr)
            *error = "malformed status line";
        return false;
    }
    out.status = (line[9] - '0') * 100 + (line[10] - '0') * 10 +
        (line[11] - '0');

    std::size_t pos = line_end + 2;
    while (pos + 2 <= head.size()) {
        std::size_t eol = head.find("\r\n", pos);
        std::string_view header_line = head.substr(pos, eol - pos);
        pos = eol + 2;
        if (header_line.empty())
            break;
        std::size_t colon = header_line.find(':');
        if (colon == std::string_view::npos)
            continue;   // lenient: skip junk header lines
        out.headers.emplace_back(
            toLower(header_line.substr(0, colon)),
            std::string(trimOws(header_line.substr(colon + 1))));
    }
    out.body = std::string(data.substr(head_end));
    return true;
}

bool
httpRoundTrip(int port, const HttpRequest& request, HttpResponse& response,
              std::string* error)
{
    auto fail = [&](const char* what) {
        if (error != nullptr)
            *error = std::string(what) + ": " + std::strerror(errno);
        return false;
    };

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return fail("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        return fail("connect");
    }

    std::string wire = serializeRequest(request);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
        if (n <= 0) {
            ::close(fd);
            return fail("send");
        }
        sent += static_cast<std::size_t>(n);
    }

    // The daemon answers Connection: close, so read to EOF.
    std::string data;
    char buffer[4096];
    for (;;) {
        ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
        if (n < 0) {
            ::close(fd);
            return fail("recv");
        }
        if (n == 0)
            break;
        data.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);

    return parseResponse(data, response, error);
}

} // namespace phantom::serve
