#include "serve/server.hpp"

#include "attack/experiment.hpp"
#include "runner/metrics_json.hpp"
#include "runner/schema.hpp"
#include "snap/state.hpp"

#include <algorithm>
#include <exception>
#include <unordered_map>

namespace phantom::serve {

using runner::JsonValue;

namespace {

u64
microsSince(std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        end - start);
    return us.count() < 0 ? 0 : static_cast<u64>(us.count());
}

/** Map a canonical kind name back to the enum; parseSpec validated it. */
bool
kindFromName(const std::string& name, attack::BranchKind* out)
{
    for (attack::BranchKind kind : attack::table1Kinds()) {
        if (name == attack::branchKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

} // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      jobs_(options.jobs != 0 ? options.jobs : runner::jobsFromEnv()),
      scheduler_(jobs_)
{
    stores_.reserve(jobs_);
    for (unsigned w = 0; w < jobs_; ++w)
        stores_.push_back(std::make_unique<snap::SnapshotStore>());
    scheduler_.setWorkerHooks(
        [this](unsigned worker) {
            snap::setActiveSnapshotStore(stores_[worker].get());
        },
        [](unsigned) { snap::setActiveSnapshotStore(nullptr); });
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    stop();
}

ServeResult
Server::errorResult(int status, const std::string& message,
                    int retry_after_s)
{
    ServeResult result;
    result.status = status;
    result.retryAfterS = retry_after_s;
    result.body = JsonValue::object();
    result.body.set("schema", runner::kServeErrorSchema);
    result.body.set("status", status);
    result.body.set("error", message);
    if (retry_after_s > 0)
        result.body.set("retry_after", retry_after_s);
    return result;
}

ServeResult
Server::run(const ExperimentSpec& spec)
{
    // Semantic validation up front, before the request costs a queue
    // slot: parseSpec checked shape, this checks the simulator agrees.
    if (snap::resolveConfig(spec.uarch) == nullptr)
        return errorResult(400, "unknown uarch \"" + spec.uarch + "\"");
    attack::BranchKind kind;
    if (!kindFromName(spec.train, &kind))
        return errorResult(400,
                           "unknown train kind \"" + spec.train + "\"");
    if (!kindFromName(spec.victim, &kind))
        return errorResult(400,
                           "unknown victim kind \"" + spec.victim + "\"");

    auto pending = std::make_shared<Pending>();
    pending->spec = spec;
    pending->enqueued = std::chrono::steady_clock::now();
    u64 deadline_ms =
        spec.deadlineMs != 0 ? spec.deadlineMs : options_.defaultDeadlineMs;
    if (deadline_ms != 0) {
        pending->hasDeadline = true;
        pending->deadline =
            pending->enqueued + std::chrono::milliseconds(deadline_ms);
    }
    std::future<ServeResult> future = pending->promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return errorResult(503, "server is shutting down");
        if (queue_.size() >= options_.queueCapacity) {
            // Crude but honest back-off hint: a full queue means at
            // least one batch must drain first.
            std::lock_guard<std::mutex> stats(statsMutex_);
            measured_.counter("serve.rejected_queue_full").inc();
            return errorResult(429, "request queue is full",
                               /*retry_after_s=*/1);
        }
        queue_.push_back(pending);
    }
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        measured_.counter("serve.accepted").inc();
    }
    cv_.notify_all();
    return future.get();
}

void
Server::dispatchLoop()
{
    for (;;) {
        std::vector<std::shared_ptr<Pending>> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (stopping_)
                return;
            batch.assign(queue_.begin(), queue_.end());
            queue_.clear();
            batchInFlight_ = true;
        }
        runBatch(std::move(batch));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batchInFlight_ = false;
        }
        idleCv_.notify_all();
    }
}

void
Server::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return (queue_.empty() && !batchInFlight_) || stopping_;
    });
}

void
Server::runBatch(std::vector<std::shared_ptr<Pending>> batch)
{
    // Group by batch key, preserving arrival order within and across
    // groups. One scheduler task per GROUP pins every request of a key
    // to one worker — and therefore one snapshot store — so request 1
    // trains and the rest fork the warm parent.
    std::vector<std::vector<std::shared_ptr<Pending>>> groups;
    std::unordered_map<std::string, std::size_t> index;
    for (auto& pending : batch) {
        std::string key = pending->spec.batchKey();
        auto [it, inserted] = index.emplace(key, groups.size());
        if (inserted)
            groups.emplace_back();
        groups[it->second].push_back(std::move(pending));
    }

    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        measured_.counter("serve.batches").inc();
        measured_.counter("serve.batch_groups").inc(groups.size());
        measured_.histogram("serve.batch_requests")
            .observe(static_cast<u64>(batch.size()));
    }

    scheduler_.forEach(groups.size(), [this, &groups](u64 g, unsigned) {
        for (const std::shared_ptr<Pending>& pending : groups[g]) {
            auto started = std::chrono::steady_clock::now();
            u64 wait_us = microsSince(pending->enqueued, started);
            ServeResult result;
            if (pending->hasDeadline && started > pending->deadline) {
                result = errorResult(
                    504, "deadline expired before the request started");
                std::lock_guard<std::mutex> stats(statsMutex_);
                measured_.counter("serve.deadline_expired").inc();
            } else {
                try {
                    result = runSpec(pending->spec, wait_us);
                } catch (const std::exception& e) {
                    result = errorResult(
                        500, std::string("experiment failed: ") + e.what());
                }
                std::lock_guard<std::mutex> stats(statsMutex_);
                measured_.counter("serve.completed").inc();
                measured_.histogram("serve.queue_wait_micros")
                    .observe(wait_us);
                measured_.histogram("serve.request_micros")
                    .observe(microsSince(
                        pending->enqueued,
                        std::chrono::steady_clock::now()));
            }
            pending->promise.set_value(std::move(result));
        }
    });

    // Refresh the aggregated snapshot-store view. Safe here: no batch
    // is in flight, so the per-worker stores are quiescent.
    snap::StoreStats total;
    for (const auto& store : stores_)
        total.merge(store->stats());
    std::lock_guard<std::mutex> stats(statsMutex_);
    snapStats_ = total;
}

ServeResult
Server::runSpec(const ExperimentSpec& spec, u64 queue_wait_us)
{
    const cpu::MicroarchConfig* config = snap::resolveConfig(spec.uarch);
    attack::BranchKind train = attack::BranchKind::IndirectJmp;
    attack::BranchKind victim = attack::BranchKind::IndirectJmp;
    if (config == nullptr || !kindFromName(spec.train, &train) ||
        !kindFromName(spec.victim, &victim))
        return errorResult(400, "spec failed semantic validation");

    attack::StageExperimentOptions options;
    options.seed = spec.seed;
    options.trials = spec.trials;
    options.targetPageOffset = spec.targetPageOffset;
    options.suppressBpOnNonBr = spec.suppressBpOnNonBr;
    options.autoIbrs = spec.autoIbrs;

    auto started = std::chrono::steady_clock::now();
    attack::StageExperiment experiment(*config, options);
    attack::StageObservation obs = experiment.run(train, victim);
    u64 run_us =
        microsSince(started, std::chrono::steady_clock::now());

    // The response is a phantom-bench-results/v2 document, assembled
    // directly (no ResultSink: its wall-clock "timing" section would
    // break response bit-identity). Everything under "experiments" and
    // "metrics.deterministic"/"metrics.manifest" derives from seeded
    // simulation only.
    JsonValue cell = JsonValue::object();
    JsonValue labels = JsonValue::object();
    labels.set(spec.train + " x " + spec.victim,
               attack::stageCellName(obs));
    cell.set("labels", std::move(labels));
    JsonValue scalars = JsonValue::object();
    scalars.set("applicable", obs.applicable ? 1 : 0);
    scalars.set("episodes", obs.episodes);
    scalars.set("trials", static_cast<u64>(spec.trials));
    cell.set("scalars", std::move(scalars));
    JsonValue experiments = JsonValue::object();
    experiments.set(spec.uarch, std::move(cell));

    obs::MetricsRegistry deterministic;
    cpu::exportPmc(obs.pmc, deterministic);
    cpu::exportCycleAttribution(obs.attribution, deterministic);
    deterministic.counter("episodes").inc(obs.episodes);

    obs::MetricsRegistry measured;
    measured.gauge("serve.queue_wait_micros")
        .set(static_cast<double>(queue_wait_us));
    measured.gauge("serve.run_micros").set(static_cast<double>(run_us));

    JsonValue manifest = JsonValue::object();
    manifest.set("bench", "phantom_serve");
    manifest.set("campaign_seed", spec.seed);
    manifest.set("fast_mode", false);
    JsonValue uarchs = JsonValue::array();
    uarchs.push(spec.uarch);
    manifest.set("uarch", std::move(uarchs));

    JsonValue metrics = JsonValue::object();
    metrics.set("deterministic",
                runner::metricsToJson(deterministic));
    metrics.set("measured", runner::metricsToJson(measured));
    metrics.set("manifest", std::move(manifest));

    ServeResult result;
    result.status = 200;
    result.body = JsonValue::object();
    result.body.set("schema", runner::kResultSchemaV2);
    result.body.set("bench", "phantom_serve");
    result.body.set("campaign_seed", spec.seed);
    result.body.set("jobs", 1);
    result.body.set("fast_mode", false);
    result.body.set("spec", spec.toJson());
    result.body.set("experiments", std::move(experiments));
    result.body.set("metrics", std::move(metrics));
    return result;
}

JsonValue
Server::healthz() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", runner::kServeHealthSchema);
    doc.set("status", "ok");
    doc.set("jobs", static_cast<u64>(jobs_));
    doc.set("queue_capacity", static_cast<u64>(options_.queueCapacity));
    return doc;
}

JsonValue
Server::statsz()
{
    std::size_t depth = queueDepth();
    std::lock_guard<std::mutex> stats(statsMutex_);
    measured_.gauge("serve.queue_depth")
        .set(static_cast<double>(depth));
    double fork_denominator =
        static_cast<double>(std::max<u64>(
            1, snapStats_.forks + snapStats_.captures));
    measured_.gauge("serve.fork_reuse_rate")
        .set(static_cast<double>(snapStats_.forks) / fork_denominator);

    JsonValue snap = JsonValue::object();
    snap.set("captures", snapStats_.captures);
    snap.set("hits", snapStats_.hits);
    snap.set("misses", snapStats_.misses);
    snap.set("restores", snapStats_.restores);
    snap.set("forks", snapStats_.forks);
    snap.set("state_bytes", snapStats_.stateBytes);

    JsonValue doc = JsonValue::object();
    doc.set("schema", runner::kServeStatsSchema);
    doc.set("queue_depth", static_cast<u64>(depth));
    doc.set("jobs", static_cast<u64>(jobs_));
    doc.set("queue_capacity", static_cast<u64>(options_.queueCapacity));
    doc.set("metrics", runner::metricsToJson(measured_));
    doc.set("snap", std::move(snap));
    return doc;
}

std::size_t
Server::queueDepth()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
Server::setDispatchPaused(bool paused)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = paused;
    }
    cv_.notify_all();
}

void
Server::stop()
{
    std::deque<std::shared_ptr<Pending>> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // Already stopped; nothing queued can remain.
            return;
        }
        stopping_ = true;
        orphans.swap(queue_);
    }
    cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    for (const auto& pending : orphans)
        pending->promise.set_value(
            errorResult(503, "server stopped before the request ran"));
}

} // namespace phantom::serve
