#include "serve/server.hpp"

#include "attack/experiment.hpp"
#include "cpu/machine.hpp"
#include "obs/build_info.hpp"
#include "obs/prof.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace_export.hpp"
#include "runner/env.hpp"
#include "runner/metrics_json.hpp"
#include "runner/prof_json.hpp"
#include "runner/schema.hpp"
#include "sim/log.hpp"
#include "snap/state.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <unordered_map>

namespace phantom::serve {

using obs::RequestStage;
using runner::JsonValue;

namespace {

u64
microsSince(std::chrono::steady_clock::time_point start,
            std::chrono::steady_clock::time_point end)
{
    auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        end - start);
    return us.count() < 0 ? 0 : static_cast<u64>(us.count());
}

/** Map a canonical kind name back to the enum; parseSpec validated it. */
bool
kindFromName(const std::string& name, attack::BranchKind* out)
{
    for (attack::BranchKind kind : attack::table1Kinds()) {
        if (name == attack::branchKindName(kind)) {
            *out = kind;
            return true;
        }
    }
    return false;
}

/** The marked stages of @p record as a {"stage": micros} object. */
JsonValue
stagesJson(const obs::TimelineRecord& record)
{
    std::array<u64, obs::kRequestStages> micros =
        record.timeline.stageMicros();
    JsonValue stages = JsonValue::object();
    for (std::size_t i = 1; i < obs::kRequestStages; ++i) {
        RequestStage stage = static_cast<RequestStage>(i);
        if (record.timeline.marked(stage))
            stages.set(obs::requestStageName(stage), micros[i]);
    }
    return stages;
}

/** One completed request as a JSON object — the access-log line and
 *  the /statsz "timelines" entries share this shape. */
JsonValue
timelineJson(const obs::TimelineRecord& record)
{
    JsonValue doc = JsonValue::object();
    doc.set("id", record.timeline.id());
    doc.set("status", record.status);
    doc.set("bytes", record.bytes);
    doc.set("target", record.target);
    doc.set("batch_key", record.batchKey);
    doc.set("warm", record.warmSource);
    doc.set("total_micros", record.timeline.totalMicros());
    doc.set("stages", stagesJson(record));
    return doc;
}

obs::TimelineRecord
recordOf(const RequestContext& ctx)
{
    obs::TimelineRecord record;
    record.timeline = ctx.timeline;
    record.status = ctx.status;
    record.bytes = ctx.responseBytes;
    record.target = ctx.target;
    record.batchKey = ctx.batchKey;
    record.warmSource = ctx.warmSource;
    return record;
}

} // namespace

ServerOptions
serverOptionsFromEnv(ServerOptions base)
{
    base.queueCapacity = static_cast<std::size_t>(runner::envU64Strict(
        "PHANTOM_SERVE_QUEUE", base.queueCapacity, 1, 65536));
    base.defaultDeadlineMs =
        runner::envU64Strict("PHANTOM_SERVE_DEADLINE_MS",
                             base.defaultDeadlineMs);
    if (runner::envPresent("PHANTOM_SERVE_SLOW_MS"))
        base.slowRequestMs =
            runner::envU64Strict("PHANTOM_SERVE_SLOW_MS", 0);
    base.flightDir =
        runner::envStringOr("PHANTOM_SERVE_FLIGHT_DIR", base.flightDir);
    return base;
}

Server::Server(const ServerOptions& options)
    : options_(options),
      jobs_(options.jobs != 0 ? options.jobs : runner::jobsFromEnv()),
      started_(std::chrono::steady_clock::now()),
      scheduler_(jobs_),
      recent_(options.timelineRingCapacity)
{
    stores_.reserve(jobs_);
    for (unsigned w = 0; w < jobs_; ++w)
        stores_.push_back(std::make_unique<snap::SnapshotStore>());
    if (options_.slowRequestMs != ServerOptions::kSlowDisabled) {
        std::size_t events = static_cast<std::size_t>(
            runner::envU64Or("PHANTOM_TRACE_EVENTS", u64{1} << 16));
        rings_.reserve(jobs_);
        for (unsigned w = 0; w < jobs_; ++w)
            rings_.push_back(
                std::make_unique<obs::RingTraceSink>(events));
    }
    scheduler_.setWorkerHooks(
        [this](unsigned worker) {
            snap::setActiveSnapshotStore(stores_[worker].get());
            if (!rings_.empty())
                obs::setActiveTraceSink(rings_[worker].get());
        },
        [this](unsigned) {
            snap::setActiveSnapshotStore(nullptr);
            if (!rings_.empty())
                obs::setActiveTraceSink(nullptr);
        });
    dispatcher_ = std::thread([this] { dispatchLoop(); });
}

Server::~Server()
{
    stop();
}

ServeResult
Server::errorResult(int status, const std::string& message,
                    u64 request_id, int retry_after_s)
{
    ServeResult result;
    result.status = status;
    result.retryAfterS = retry_after_s;
    result.body = JsonValue::object();
    result.body.set("schema", runner::kServeErrorSchema);
    result.body.set("status", status);
    result.body.set("error", message);
    if (request_id != 0)
        result.body.set("request_id", request_id);
    if (retry_after_s > 0)
        result.body.set("retry_after", retry_after_s);
    return result;
}

RequestContext
Server::beginRequest(const std::string& method, const std::string& target,
                     const std::string& peer)
{
    RequestContext ctx;
    ctx.timeline =
        obs::RequestTimeline(nextRequestId_.fetch_add(1) + 1);
    ctx.method = method;
    ctx.target = target;
    ctx.peer = peer;
    return ctx;
}

ServeResult
Server::run(const ExperimentSpec& spec)
{
    RequestContext ctx = beginRequest("POST", "/run");
    ServeResult result = run(spec, ctx);
    ctx.status = result.status;
    finishRequest(ctx);
    return result;
}

ServeResult
Server::run(const ExperimentSpec& spec, RequestContext& ctx)
{
    u64 rid = ctx.timeline.id();
    // Semantic validation up front, before the request costs a queue
    // slot: parseSpec checked shape, this checks the simulator agrees.
    if (snap::resolveConfig(spec.uarch) == nullptr)
        return errorResult(400, "unknown uarch \"" + spec.uarch + "\"",
                           rid);
    attack::BranchKind kind;
    if (!kindFromName(spec.train, &kind))
        return errorResult(400,
                           "unknown train kind \"" + spec.train + "\"",
                           rid);
    if (!kindFromName(spec.victim, &kind))
        return errorResult(400,
                           "unknown victim kind \"" + spec.victim + "\"",
                           rid);
    ctx.timeline.mark(RequestStage::Validated);
    ctx.batchKey = spec.batchKey();

    auto pending = std::make_shared<Pending>();
    pending->spec = spec;
    pending->ctx = &ctx;
    pending->enqueued = std::chrono::steady_clock::now();
    u64 deadline_ms =
        spec.deadlineMs != 0 ? spec.deadlineMs : options_.defaultDeadlineMs;
    if (deadline_ms != 0) {
        pending->hasDeadline = true;
        pending->deadline =
            pending->enqueued + std::chrono::milliseconds(deadline_ms);
    }
    std::future<ServeResult> future = pending->promise.get_future();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return errorResult(503, "server is shutting down", rid);
        if (queue_.size() >= options_.queueCapacity) {
            // Crude but honest back-off hint: a full queue means at
            // least one batch must drain first.
            std::lock_guard<std::mutex> stats(statsMutex_);
            measured_.counter("serve.rejected_queue_full").inc();
            return errorResult(429, "request queue is full", rid,
                               /*retry_after_s=*/1);
        }
        // Marked under the lock: once the dispatcher can see the
        // request, only the worker touches the timeline until the
        // promise resolves.
        ctx.timeline.mark(RequestStage::Enqueued);
        queue_.push_back(pending);
    }
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        measured_.counter("serve.accepted").inc();
    }
    cv_.notify_all();
    return future.get();
}

void
Server::finishRequest(RequestContext& ctx)
{
    if (ctx.finished)
        return;
    ctx.finished = true;
    ctx.timeline.mark(RequestStage::Written);

    obs::TimelineRecord record = recordOf(ctx);
    std::array<u64, obs::kRequestStages> micros =
        ctx.timeline.stageMicros();
    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        measured_.counter("serve.status." + std::to_string(ctx.status))
            .inc();
        for (std::size_t i = 1; i < obs::kRequestStages; ++i) {
            RequestStage stage = static_cast<RequestStage>(i);
            if (!ctx.timeline.marked(stage))
                continue;
            measured_
                .histogram(std::string("serve.stage.") +
                           obs::requestStageName(stage) + "_micros")
                .observe(micros[i]);
        }
        recent_.push(std::move(record));
    }

    if (accessLogEnabled()) {
        JsonValue line = timelineJson(recordOf(ctx));
        line.set("peer", ctx.peer);
        line.set("method", ctx.method);
        logAccessLine(line.dump());
    }
}

void
Server::dispatchLoop()
{
    for (;;) {
        std::vector<std::shared_ptr<Pending>> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] {
                return stopping_ || (!paused_ && !queue_.empty());
            });
            if (stopping_)
                return;
            batch.assign(queue_.begin(), queue_.end());
            queue_.clear();
            batchInFlight_ = true;
        }
        runBatch(std::move(batch));
        {
            std::lock_guard<std::mutex> lock(mutex_);
            batchInFlight_ = false;
        }
        idleCv_.notify_all();
    }
}

void
Server::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] {
        return (queue_.empty() && !batchInFlight_) || stopping_;
    });
}

void
Server::runBatch(std::vector<std::shared_ptr<Pending>> batch)
{
    // Group by batch key, preserving arrival order within and across
    // groups. One scheduler task per GROUP pins every request of a key
    // to one worker — and therefore one snapshot store — so request 1
    // trains and the rest fork the warm parent.
    std::vector<std::vector<std::shared_ptr<Pending>>> groups;
    std::unordered_map<std::string, std::size_t> index;
    for (auto& pending : batch) {
        std::string key = pending->spec.batchKey();
        auto [it, inserted] = index.emplace(key, groups.size());
        if (inserted)
            groups.emplace_back();
        groups[it->second].push_back(std::move(pending));
    }

    {
        std::lock_guard<std::mutex> stats(statsMutex_);
        measured_.counter("serve.batches").inc();
        measured_.counter("serve.batch_groups").inc(groups.size());
        measured_.histogram("serve.batch_requests")
            .observe(static_cast<u64>(batch.size()));
    }

    bool flight = options_.slowRequestMs != ServerOptions::kSlowDisabled;
    scheduler_.forEach(groups.size(), [this, &groups,
                                       flight](u64 g, unsigned worker) {
        for (const std::shared_ptr<Pending>& pending : groups[g]) {
            RequestContext* ctx = pending->ctx;
            ctx->timeline.mark(RequestStage::Dequeued);
            auto started = std::chrono::steady_clock::now();
            u64 wait_us = microsSince(pending->enqueued, started);
            ServeResult result;
            if (pending->hasDeadline && started > pending->deadline) {
                result = errorResult(
                    504, "deadline expired before the request started",
                    ctx->timeline.id());
                std::lock_guard<std::mutex> stats(statsMutex_);
                measured_.counter("serve.deadline_expired").inc();
            } else {
                // Request-scoped flight ring: cleared here so a later
                // snapshot holds exactly this request's pipeline events.
                if (flight && !rings_.empty())
                    rings_[worker]->clear();
                try {
                    obs::prof::ScopedPhase dispatch_scope(
                        obs::prof::Phase::ServeDispatch);
                    result = runSpec(pending->spec, wait_us, *ctx);
                } catch (const std::exception& e) {
                    result = errorResult(
                        500, std::string("experiment failed: ") + e.what(),
                        ctx->timeline.id());
                }
                {
                    std::lock_guard<std::mutex> stats(statsMutex_);
                    measured_.counter("serve.completed").inc();
                    measured_.histogram("serve.queue_wait_micros")
                        .observe(wait_us);
                    measured_.histogram("serve.request_micros")
                        .observe(microsSince(
                            pending->enqueued,
                            std::chrono::steady_clock::now()));
                }
                if (flight &&
                    ctx->timeline.elapsedMicros() >=
                        options_.slowRequestMs * 1000)
                    exportFlightTrace(*ctx, worker);
            }
            pending->promise.set_value(std::move(result));
        }
    });

    // Refresh the aggregated snapshot-store view. Safe here: no batch
    // is in flight, so the per-worker stores are quiescent.
    snap::StoreStats total;
    for (const auto& store : stores_)
        total.merge(store->stats());
    std::lock_guard<std::mutex> stats(statsMutex_);
    snapStats_ = total;
}

ServeResult
Server::runSpec(const ExperimentSpec& spec, u64 queue_wait_us,
                RequestContext& ctx)
{
    const cpu::MicroarchConfig* config = snap::resolveConfig(spec.uarch);
    attack::BranchKind train = attack::BranchKind::IndirectJmp;
    attack::BranchKind victim = attack::BranchKind::IndirectJmp;
    if (config == nullptr || !kindFromName(spec.train, &train) ||
        !kindFromName(spec.victim, &victim))
        return errorResult(400, "spec failed semantic validation",
                           ctx.timeline.id());

    attack::StageExperimentOptions options;
    options.seed = spec.seed;
    options.trials = spec.trials;
    options.targetPageOffset = spec.targetPageOffset;
    options.suppressBpOnNonBr = spec.suppressBpOnNonBr;
    options.autoIbrs = spec.autoIbrs;
    // Splits the timeline at the warm-state boundary: everything up to
    // the hook is training-or-forking, everything after is channel
    // execution. Wall-clock only — seeded results cannot see it.
    options.onWarmReady = [&ctx] {
        ctx.timeline.mark(RequestStage::TrainOrFork);
    };

    // The fork-vs-capture label comes from this worker's store delta:
    // requests of a group run sequentially on one worker, so the delta
    // is exactly this request's activity.
    snap::SnapshotStore* store = snap::activeSnapshotStore();
    snap::StoreStats before = store != nullptr ? store->stats()
                                               : snap::StoreStats{};

    auto started = std::chrono::steady_clock::now();
    attack::StageExperiment experiment(*config, options);
    attack::StageObservation obs = experiment.run(train, victim);
    u64 run_us =
        microsSince(started, std::chrono::steady_clock::now());
    ctx.timeline.mark(RequestStage::Executed);

    if (store != nullptr) {
        const snap::StoreStats& after = store->stats();
        if (after.captures > before.captures)
            ctx.warmSource = "capture";
        else if (after.forks > before.forks)
            ctx.warmSource = "fork";
    }

    // The response is a phantom-bench-results/v2 document, assembled
    // directly (no ResultSink: its wall-clock "timing" section would
    // break response bit-identity). Everything under "experiments" and
    // "metrics.deterministic"/"metrics.manifest" derives from seeded
    // simulation only.
    JsonValue cell = JsonValue::object();
    JsonValue labels = JsonValue::object();
    labels.set(spec.train + " x " + spec.victim,
               attack::stageCellName(obs));
    cell.set("labels", std::move(labels));
    JsonValue scalars = JsonValue::object();
    scalars.set("applicable", obs.applicable ? 1 : 0);
    scalars.set("episodes", obs.episodes);
    scalars.set("trials", static_cast<u64>(spec.trials));
    cell.set("scalars", std::move(scalars));
    JsonValue experiments = JsonValue::object();
    experiments.set(spec.uarch, std::move(cell));

    obs::MetricsRegistry deterministic;
    cpu::exportPmc(obs.pmc, deterministic);
    cpu::exportCycleAttribution(obs.attribution, deterministic);
    deterministic.counter("episodes").inc(obs.episodes);

    obs::MetricsRegistry measured;
    measured.gauge("serve.queue_wait_micros")
        .set(static_cast<double>(queue_wait_us));
    measured.gauge("serve.run_micros").set(static_cast<double>(run_us));

    JsonValue manifest = JsonValue::object();
    manifest.set("bench", "phantom_serve");
    manifest.set("campaign_seed", spec.seed);
    manifest.set("fast_mode", false);
    JsonValue uarchs = JsonValue::array();
    uarchs.push(spec.uarch);
    manifest.set("uarch", std::move(uarchs));

    JsonValue metrics = JsonValue::object();
    metrics.set("deterministic",
                runner::metricsToJson(deterministic));
    metrics.set("measured", runner::metricsToJson(measured));
    metrics.set("manifest", std::move(manifest));

    ServeResult result;
    result.status = 200;
    result.body = JsonValue::object();
    result.body.set("schema", runner::kResultSchemaV2);
    result.body.set("bench", "phantom_serve");
    result.body.set("campaign_seed", spec.seed);
    result.body.set("jobs", 1);
    result.body.set("fast_mode", false);
    result.body.set("spec", spec.toJson());
    result.body.set("experiments", std::move(experiments));
    result.body.set("metrics", std::move(metrics));
    ctx.timeline.mark(RequestStage::Serialized);
    return result;
}

void
Server::exportFlightTrace(const RequestContext& ctx, unsigned worker)
{
    if (rings_.empty())
        return;
    obs::ShardTrace shard;
    shard.shard = static_cast<unsigned>(worker);
    shard.dropped = rings_[worker]->dropped();
    shard.events = rings_[worker]->snapshot();

    char name[48];
    std::snprintf(name, sizeof name, "req-%06llu.trace.json",
                  static_cast<unsigned long long>(ctx.timeline.id()));
    std::string path = options_.flightDir + "/" + name;

    obs::ChromeTraceOptions trace_options;
    trace_options.processName = "phantom-serve";
    trace_options.episodeLabel = [](u8 kind) {
        return cpu::episodeKindName(static_cast<cpu::EpisodeKind>(kind));
    };
    bool ok = obs::writeChromeTrace(path, {shard}, trace_options);

    std::lock_guard<std::mutex> stats(statsMutex_);
    if (!ok) {
        measured_.counter("serve.flight.write_failed").inc();
        return;
    }
    measured_.counter("serve.flight.exported").inc();
    flightFiles_.push_back(path);
    // Bounded file count: evict the oldest trace, and say so — both a
    // counter and a log line, so truncation is never silent.
    while (flightFiles_.size() > options_.flightMaxFiles) {
        std::string evicted = flightFiles_.front();
        flightFiles_.pop_front();
        std::remove(evicted.c_str());
        measured_.counter("serve.flight.evicted").inc();
        logWarn("flight recorder evicted ", evicted);
    }
}

JsonValue
Server::healthz() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", runner::kServeHealthSchema);
    doc.set("status", "ok");
    doc.set("jobs", static_cast<u64>(jobs_));
    doc.set("queue_capacity", static_cast<u64>(options_.queueCapacity));
    doc.set("uptime_seconds", uptimeSeconds());
    doc.set("git_describe", obs::gitDescribe());
    return doc;
}

u64
Server::uptimeSeconds() const
{
    auto s = std::chrono::duration_cast<std::chrono::seconds>(
        std::chrono::steady_clock::now() - started_);
    return s.count() < 0 ? 0 : static_cast<u64>(s.count());
}

JsonValue
Server::statsz()
{
    std::size_t depth = queueDepth();
    std::lock_guard<std::mutex> stats(statsMutex_);
    measured_.gauge("serve.queue_depth")
        .set(static_cast<double>(depth));
    double fork_denominator =
        static_cast<double>(std::max<u64>(
            1, snapStats_.forks + snapStats_.captures));
    measured_.gauge("serve.fork_reuse_rate")
        .set(static_cast<double>(snapStats_.forks) / fork_denominator);

    JsonValue snap = JsonValue::object();
    snap.set("captures", snapStats_.captures);
    snap.set("hits", snapStats_.hits);
    snap.set("misses", snapStats_.misses);
    snap.set("restores", snapStats_.restores);
    snap.set("forks", snapStats_.forks);
    snap.set("state_bytes", snapStats_.stateBytes);

    JsonValue timelines = JsonValue::array();
    for (const obs::TimelineRecord& record : recent_.snapshot())
        timelines.push(timelineJson(record));
    JsonValue ring = JsonValue::object();
    ring.set("capacity", static_cast<u64>(recent_.capacity()));
    ring.set("pushed", recent_.pushed());
    ring.set("evicted", recent_.evicted());

    JsonValue doc = JsonValue::object();
    doc.set("schema", runner::kServeStatsSchema);
    doc.set("queue_depth", static_cast<u64>(depth));
    doc.set("jobs", static_cast<u64>(jobs_));
    doc.set("queue_capacity", static_cast<u64>(options_.queueCapacity));
    doc.set("uptime_seconds", uptimeSeconds());
    doc.set("metrics", runner::metricsToJson(measured_));
    doc.set("snap", std::move(snap));
    doc.set("timelines", std::move(timelines));
    doc.set("timeline_ring", std::move(ring));
    return doc;
}

JsonValue
Server::profilez()
{
    auto uptime_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - started_);
    u64 wall_ns =
        uptime_ns.count() < 0 ? 0 : static_cast<u64>(uptime_ns.count());
    JsonValue doc = JsonValue::object();
    doc.set("schema", runner::kServeProfileSchema);
    doc.set("uptime_seconds", uptimeSeconds());
    doc.set("profile",
            runner::profileToJson(obs::prof::collect(), wall_ns));
    return doc;
}

std::string
Server::metricsText()
{
    std::size_t depth = queueDepth();
    std::lock_guard<std::mutex> stats(statsMutex_);
    measured_.gauge("serve.queue_depth")
        .set(static_cast<double>(depth));
    double fork_denominator =
        static_cast<double>(std::max<u64>(
            1, snapStats_.forks + snapStats_.captures));
    measured_.gauge("serve.fork_reuse_rate")
        .set(static_cast<double>(snapStats_.forks) / fork_denominator);

    // Scrape-time snapshot: the live registry plus the uptime gauge and
    // the aggregated snapshot-store counters, one flat exposition.
    obs::MetricsRegistry exposition = measured_;
    exposition.gauge("serve.uptime_seconds")
        .set(static_cast<double>(uptimeSeconds()));
    exposition.counter("serve.snap.captures").inc(snapStats_.captures);
    exposition.counter("serve.snap.hits").inc(snapStats_.hits);
    exposition.counter("serve.snap.misses").inc(snapStats_.misses);
    exposition.counter("serve.snap.restores").inc(snapStats_.restores);
    exposition.counter("serve.snap.forks").inc(snapStats_.forks);
    exposition.counter("serve.snap.state_bytes")
        .inc(snapStats_.stateBytes);
    // prof.* rows appear only while profiling: with PHANTOM_PROF off
    // the exposition stays byte-identical to an unprofiled build.
    if (obs::prof::enabled()) {
        obs::prof::Report profile = obs::prof::collect();
        for (const obs::prof::PhaseReport& phase : profile.phases) {
            std::string base =
                std::string("prof.") + obs::prof::phaseName(phase.phase);
            exposition.counter(base + ".count").inc(phase.count);
            exposition.counter(base + ".self_ns").inc(phase.selfNs);
            exposition.counter(base + ".total_ns").inc(phase.totalNs);
        }
    }
    return obs::promExposition(exposition);
}

std::size_t
Server::queueDepth()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
Server::setDispatchPaused(bool paused)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        paused_ = paused;
    }
    cv_.notify_all();
}

void
Server::stop()
{
    std::deque<std::shared_ptr<Pending>> orphans;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) {
            // Already stopped; nothing queued can remain.
            return;
        }
        stopping_ = true;
        orphans.swap(queue_);
    }
    cv_.notify_all();
    if (dispatcher_.joinable())
        dispatcher_.join();
    for (const auto& pending : orphans)
        pending->promise.set_value(errorResult(
            503, "server stopped before the request ran",
            pending->ctx != nullptr ? pending->ctx->timeline.id() : 0));
}

} // namespace phantom::serve
