/**
 * @file
 * The /run request body: a JSON experiment spec.
 *
 * A spec names one Table-1 stage-experiment cell — microarchitecture,
 * training kind, victim kind — plus the seeded-simulation knobs of
 * attack::StageExperimentOptions. Parsing is strict: unknown keys,
 * wrong types, and out-of-range values are rejected with a one-line
 * diagnostic the daemon forwards as a 400 body, so a typo'd key can
 * never silently fall back to a default.
 *
 * This layer deliberately links only phantom_json (no attack/, no
 * snap/): it keeps its own copy of the canonical branch-kind names and
 * tests/test_serve.cpp asserts the copy matches attack::branchKindName
 * over table1Kinds(). Semantic checks that need the simulator (does
 * the uarch name resolve?) live in Server::run.
 */

#ifndef PHANTOM_SERVE_SPEC_HPP
#define PHANTOM_SERVE_SPEC_HPP

#include "runner/json.hpp"
#include "sim/types.hpp"

#include <array>
#include <string>

namespace phantom::serve {

/**
 * Canonical branch-kind names, in Table-1 row/column order. Must stay
 * in lockstep with attack::branchKindName over attack::table1Kinds().
 */
const std::array<const char*, 5>& specKindNames();

/** True when @p name is one of specKindNames(). */
bool isKindName(const std::string& name);

/** One validated /run request. */
struct ExperimentSpec
{
    std::string uarch;    ///< e.g. "zen2" (resolved by the server)
    std::string train;    ///< training kind, one of specKindNames()
    std::string victim;   ///< victim kind, one of specKindNames()
    u64 seed = 7;
    u32 trials = 3;                ///< majority-vote trials, 1..64
    u64 targetPageOffset = 0xac0;  ///< page offset of the target C
    bool suppressBpOnNonBr = false;
    bool autoIbrs = false;
    u64 deadlineMs = 0;   ///< 0 = server default (possibly none)

    /**
     * Batching identity: requests with equal keys warm the same parent
     * snapshot, so the dispatcher runs them on one worker shard and
     * all but the first CoW-fork instead of retraining. Excludes
     * `trials` and `deadlineMs` — neither changes the warmed state.
     */
    std::string batchKey() const;

    /** Canonical echo of the spec (sorted keys, all fields explicit). */
    runner::JsonValue toJson() const;
};

/**
 * Validate @p doc as an experiment spec. Returns false with a
 * diagnostic in @p error on any unknown key, type mismatch,
 * non-integral number, or out-of-range value.
 */
bool parseSpec(const runner::JsonValue& doc, ExperimentSpec& out,
               std::string* error);

} // namespace phantom::serve

#endif // PHANTOM_SERVE_SPEC_HPP
