#include "serve/daemon.hpp"

#include "runner/schema.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace phantom::serve {

using runner::JsonValue;

namespace {

HttpResponse
jsonResponse(int status, const JsonValue& body)
{
    HttpResponse response;
    response.status = status;
    response.headers.emplace_back("content-type", "application/json");
    response.body = body.dump(2);
    response.body += "\n";
    return response;
}

HttpResponse
errorResponse(int status, const std::string& message, u64 request_id)
{
    JsonValue body = JsonValue::object();
    body.set("schema", runner::kServeErrorSchema);
    body.set("status", status);
    body.set("error", message);
    if (request_id != 0)
        body.set("request_id", request_id);
    return jsonResponse(status, body);
}

/** Stamp the response with the request id and the Serialized mark
 *  (unless the 200 path already placed it closer to the work). */
void
sealResponse(HttpResponse& response, RequestContext& ctx)
{
    response.headers.emplace_back("X-Phantom-Request-Id",
                                  std::to_string(ctx.timeline.id()));
    if (!ctx.timeline.marked(obs::RequestStage::Serialized))
        ctx.timeline.mark(obs::RequestStage::Serialized);
}

/** Remote endpoint of @p fd as "ip:port", or "unknown". */
std::string
peerName(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof addr;
    if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
        return "unknown";
    char ip[INET_ADDRSTRLEN] = "unknown";
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
    return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

} // namespace

Daemon::Daemon(Server& server, int port, HttpLimits limits)
    : server_(server), limits_(limits)
{
    listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listenFd_ < 0)
        throw std::runtime_error(std::string("socket: ") +
                                 std::strerror(errno));
    int one = 1;
    ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof addr) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        std::string what = std::string("bind 127.0.0.1:") +
            std::to_string(port) + ": " + std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        throw std::runtime_error(what);
    }

    socklen_t len = sizeof addr;
    ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);

    acceptor_ = std::thread([this] { acceptLoop(); });
}

Daemon::~Daemon()
{
    stop();
}

void
Daemon::stop()
{
    if (stopping_.exchange(true))
        return;
    // shutdown() wakes the blocking accept(); close() alone may not.
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
        listenFd_ = -1;
    }
    if (acceptor_.joinable())
        acceptor_.join();
    std::vector<std::thread> connections;
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections.swap(connections_);
    }
    for (std::thread& t : connections)
        if (t.joinable())
            t.join();
}

void
Daemon::acceptLoop()
{
    while (!stopping_.load()) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        reapFinished();
        // One request per connection and experiments run for tens of
        // milliseconds each, so a plain thread per connection is the
        // simplest correct model; Server does the real queueing.
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.emplace_back([this, fd] {
            serveConnection(fd);
            std::lock_guard<std::mutex> done(connectionsMutex_);
            finished_.push_back(std::this_thread::get_id());
        });
    }
}

void
Daemon::reapFinished()
{
    std::lock_guard<std::mutex> lock(connectionsMutex_);
    for (std::thread::id id : finished_) {
        for (auto it = connections_.begin(); it != connections_.end();
             ++it) {
            if (it->get_id() == id) {
                it->join();
                connections_.erase(it);
                break;
            }
        }
    }
    finished_.clear();
}

void
Daemon::serveConnection(int fd)
{
    // Bound every read so a stalled client cannot pin the thread.
    timeval timeout{};
    timeout.tv_sec = 30;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

    // The request context opens at accept: the id exists before a
    // single byte is read, so even a garbled head is traceable.
    RequestContext ctx = server_.beginRequest("", "", peerName(fd));

    HttpResponse response;
    HttpRequest request;
    std::string data;
    char buffer[4096];
    std::size_t head_end = std::string::npos;
    bool peer_gone = false;

    // Read until the blank line that ends the head.
    while (head_end == std::string::npos) {
        if (data.size() > limits_.maxRequestLine + limits_.maxHeaderBytes) {
            response = errorResponse(431, "request head too large",
                                     ctx.timeline.id());
            goto answer;
        }
        {
            ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
            if (n <= 0) {
                peer_gone = n == 0 && data.empty();
                if (!peer_gone) {
                    response = errorResponse(400, "truncated request head",
                                             ctx.timeline.id());
                    goto answer;
                }
                // The peer connected and left without a request: no
                // request ever existed, so nothing reaches the log.
                ::close(fd);
                return;
            }
            data.append(buffer, static_cast<std::size_t>(n));
        }
        head_end = findHeadEnd(data);
    }

    {
        HttpParseResult parsed = parseRequestHead(data, request, limits_);
        if (!parsed.ok) {
            response = errorResponse(parsed.status, parsed.error,
                                     ctx.timeline.id());
            goto answer;
        }
        request.peer = ctx.peer;
        ctx.method = request.method;
        ctx.target = request.target;
        ctx.timeline.mark(obs::RequestStage::HeadParsed);
        // Read the declared body; anything short of Content-Length is
        // a client error, not a hang (recv timeout above).
        while (data.size() < parsed.headBytes + parsed.contentLength) {
            ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
            if (n <= 0) {
                response = errorResponse(400, "truncated request body",
                                         ctx.timeline.id());
                goto answer;
            }
            data.append(buffer, static_cast<std::size_t>(n));
        }
        request.body =
            data.substr(parsed.headBytes, parsed.contentLength);
        response = handle(request, ctx);
    }

answer:
    sealResponse(response, ctx);
    {
        std::string wire = serializeResponse(response);
        std::size_t sent = 0;
        while (sent < wire.size()) {
            ssize_t n =
                ::send(fd, wire.data() + sent, wire.size() - sent, 0);
            if (n <= 0)
                break;
            sent += static_cast<std::size_t>(n);
        }
    }
    ::shutdown(fd, SHUT_WR);
    ::close(fd);
    ctx.status = response.status;
    ctx.responseBytes = response.body.size();
    server_.finishRequest(ctx);
}

HttpResponse
Daemon::handle(const HttpRequest& request)
{
    RequestContext ctx = server_.beginRequest(
        request.method, request.target,
        request.peer.empty() ? "local" : request.peer);
    HttpResponse response = handle(request, ctx);
    sealResponse(response, ctx);
    ctx.status = response.status;
    ctx.responseBytes = response.body.size();
    server_.finishRequest(ctx);
    return response;
}

HttpResponse
Daemon::handle(const HttpRequest& request, RequestContext& ctx)
{
    u64 rid = ctx.timeline.id();
    if (request.target == "/healthz") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /healthz", rid);
        return jsonResponse(200, server_.healthz());
    }
    if (request.target == "/statsz") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /statsz", rid);
        return jsonResponse(200, server_.statsz());
    }
    if (request.target == "/profilez") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /profilez", rid);
        return jsonResponse(200, server_.profilez());
    }
    if (request.target == "/metricsz") {
        if (request.method != "GET")
            return errorResponse(405, "use GET /metricsz", rid);
        HttpResponse response;
        response.status = 200;
        response.headers.emplace_back(
            "content-type", "text/plain; version=0.0.4; charset=utf-8");
        response.body = server_.metricsText();
        return response;
    }
    if (request.target == "/run") {
        if (request.method != "POST")
            return errorResponse(405, "use POST /run", rid);
        JsonValue doc;
        std::string error;
        if (!runner::parseJson(request.body, doc, &error))
            return errorResponse(400, "malformed JSON body: " + error,
                                 rid);
        ExperimentSpec spec;
        if (!parseSpec(doc, spec, &error))
            return errorResponse(400, "invalid spec: " + error, rid);
        ServeResult result = server_.run(spec, ctx);
        HttpResponse response = jsonResponse(result.status, result.body);
        if (result.retryAfterS > 0)
            response.headers.emplace_back(
                "retry-after", std::to_string(result.retryAfterS));
        return response;
    }
    return errorResponse(404,
                         "unknown target \"" + request.target + "\"", rid);
}

} // namespace phantom::serve
