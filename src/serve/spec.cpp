#include "serve/spec.hpp"

#include <cmath>
#include <cstdio>

namespace phantom::serve {

using runner::JsonValue;

const std::array<const char*, 5>&
specKindNames()
{
    // Table-1 order; mirrored from attack::branchKindName (test_serve
    // asserts the two tables agree).
    static const std::array<const char*, 5> kNames = {
        "jmp*", "jmp", "jcc", "ret", "non branch",
    };
    return kNames;
}

bool
isKindName(const std::string& name)
{
    for (const char* kind : specKindNames())
        if (name == kind)
            return true;
    return false;
}

std::string
ExperimentSpec::batchKey() const
{
    char buffer[160];
    std::snprintf(buffer, sizeof buffer, "%s|%s|%s|%016llx|%03llx%s%s",
                  uarch.c_str(), train.c_str(), victim.c_str(),
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(targetPageOffset),
                  suppressBpOnNonBr ? "|sbp" : "",
                  autoIbrs ? "|aibrs" : "");
    return buffer;
}

JsonValue
ExperimentSpec::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("experiment", "stage");
    doc.set("uarch", uarch);
    doc.set("train", train);
    doc.set("victim", victim);
    doc.set("seed", seed);
    doc.set("trials", static_cast<u64>(trials));
    doc.set("target_page_offset", targetPageOffset);
    doc.set("suppress_bp_on_non_br", suppressBpOnNonBr);
    doc.set("auto_ibrs", autoIbrs);
    doc.set("deadline_ms", deadlineMs);
    return doc;
}

namespace {

bool
failSpec(std::string* error, const std::string& message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

/** Extract a non-negative integral number, or fail with @p key context. */
bool
readU64(const JsonValue& value, const std::string& key, u64 max, u64* out,
        std::string* error)
{
    if (value.kind() != JsonValue::Kind::Number)
        return failSpec(error, "\"" + key + "\" must be a number");
    double d = value.number();
    if (!(d >= 0) || d != std::floor(d) ||
        d > 18446744073709549568.0 /* largest double below 2^64 */)
        return failSpec(error,
                        "\"" + key + "\" must be a non-negative integer");
    u64 n = static_cast<u64>(d);
    if (n > max)
        return failSpec(error, "\"" + key + "\" is out of range");
    *out = n;
    return true;
}

bool
readString(const JsonValue& value, const std::string& key, std::string* out,
           std::string* error)
{
    if (value.kind() != JsonValue::Kind::String)
        return failSpec(error, "\"" + key + "\" must be a string");
    *out = value.string();
    return true;
}

bool
readBool(const JsonValue& value, const std::string& key, bool* out,
         std::string* error)
{
    if (value.kind() != JsonValue::Kind::Bool)
        return failSpec(error, "\"" + key + "\" must be a boolean");
    *out = value.boolean();
    return true;
}

} // namespace

bool
parseSpec(const JsonValue& doc, ExperimentSpec& out, std::string* error)
{
    out = ExperimentSpec{};
    if (!doc.isObject())
        return failSpec(error, "spec must be a JSON object");

    for (const auto& [key, value] : doc.members()) {
        if (key == "experiment") {
            std::string name;
            if (!readString(value, key, &name, error))
                return false;
            if (name != "stage")
                return failSpec(error,
                                "unknown experiment \"" + name +
                                    "\" (only \"stage\" is served)");
        } else if (key == "uarch") {
            if (!readString(value, key, &out.uarch, error))
                return false;
        } else if (key == "train") {
            if (!readString(value, key, &out.train, error))
                return false;
        } else if (key == "victim") {
            if (!readString(value, key, &out.victim, error))
                return false;
        } else if (key == "seed") {
            if (!readU64(value, key, ~u64{0}, &out.seed, error))
                return false;
        } else if (key == "trials") {
            u64 trials = 0;
            if (!readU64(value, key, 64, &trials, error))
                return false;
            if (trials == 0)
                return failSpec(error, "\"trials\" must be at least 1");
            out.trials = static_cast<u32>(trials);
        } else if (key == "target_page_offset") {
            if (!readU64(value, key, 0xfff, &out.targetPageOffset, error))
                return false;
        } else if (key == "suppress_bp_on_non_br") {
            if (!readBool(value, key, &out.suppressBpOnNonBr, error))
                return false;
        } else if (key == "auto_ibrs") {
            if (!readBool(value, key, &out.autoIbrs, error))
                return false;
        } else if (key == "deadline_ms") {
            if (!readU64(value, key, ~u64{0}, &out.deadlineMs, error))
                return false;
        } else {
            return failSpec(error, "unknown spec key \"" + key + "\"");
        }
    }

    if (out.uarch.empty())
        return failSpec(error, "missing required key \"uarch\"");
    if (out.train.empty())
        return failSpec(error, "missing required key \"train\"");
    if (out.victim.empty())
        return failSpec(error, "missing required key \"victim\"");
    if (!isKindName(out.train))
        return failSpec(error,
                        "\"train\" is not a branch kind: \"" + out.train +
                            "\"");
    if (!isKindName(out.victim))
        return failSpec(error,
                        "\"victim\" is not a branch kind: \"" + out.victim +
                            "\"");
    return true;
}

} // namespace phantom::serve
