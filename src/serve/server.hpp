/**
 * @file
 * The experiment service: a bounded admission queue in front of a
 * snapshot-pooling worker dispatcher.
 *
 * Request flow:
 *
 *   Server::run(spec)                       (any caller thread, blocking)
 *     ├─ semantic validation (uarch resolves, kinds map)   → 400
 *     ├─ admission: queue full?                            → 429
 *     └─ enqueue + wait on a future
 *   dispatcher thread
 *     ├─ drains the whole queue into one batch
 *     ├─ groups requests by ExperimentSpec::batchKey()
 *     └─ scheduler_.forEach(one task per GROUP)
 *   worker w (TrialScheduler thread, snap store w ambient)
 *     ├─ expired deadline?                                 → 504
 *     └─ StageExperiment::run → phantom-bench-results/v2 doc
 *
 * Scheduling one task per *group* (not per request) is what makes the
 * snapshot pooling work: every request of a group lands on the same
 * worker, whose per-shard snap::SnapshotStore already holds the warm
 * parent after the first request — the rest CoW-fork it instead of
 * retraining (snap.captures + snap.forks counters prove it). Stores
 * persist across batches, so a popular spec stays warm for the
 * daemon's lifetime.
 *
 * Determinism: a response's "experiments", "metrics.deterministic" and
 * "metrics.manifest" subtrees derive only from seeded simulation —
 * identical specs get bit-identical subtrees regardless of queueing,
 * batching, or concurrency. "metrics.measured" carries per-request
 * wall-clock and legitimately varies.
 */

#ifndef PHANTOM_SERVE_SERVER_HPP
#define PHANTOM_SERVE_SERVER_HPP

#include "obs/metrics.hpp"
#include "runner/json.hpp"
#include "runner/scheduler.hpp"
#include "serve/spec.hpp"
#include "snap/store.hpp"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phantom::serve {

struct ServerOptions
{
    unsigned jobs = 0;              ///< worker count; 0 = jobsFromEnv()
    std::size_t queueCapacity = 64; ///< admitted-but-unstarted requests
    u64 defaultDeadlineMs = 0;      ///< applied when a spec has none; 0 = ∞
};

/** Outcome of one request: an HTTP status plus a JSON body. */
struct ServeResult
{
    int status = 200;
    int retryAfterS = 0;   ///< nonzero on 429, for the Retry-After header
    runner::JsonValue body;
};

class Server
{
  public:
    explicit Server(const ServerOptions& options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Execute @p spec and block until its result is ready. Safe to call
     * from any number of threads concurrently. Never throws: failures
     * come back as a 4xx/5xx status with a kServeErrorSchema body.
     */
    ServeResult run(const ExperimentSpec& spec);

    /** Liveness document (kServeHealthSchema). */
    runner::JsonValue healthz() const;

    /** Counters/gauges/queue depth document (kServeStatsSchema). */
    runner::JsonValue statsz();

    /** Admitted-but-unstarted requests right now. */
    std::size_t queueDepth();

    /**
     * Test hook: while paused the dispatcher admits (or 429s) but does
     * not start work, so tests can deterministically fill the queue,
     * force batching, or let deadlines lapse. Unpausing dispatches the
     * accumulated batch at once.
     */
    void setDispatchPaused(bool paused);

    /**
     * Block until the queue is empty and no batch is in flight. A
     * request's future resolves inside the batch, slightly before the
     * dispatcher's end-of-batch bookkeeping (the snap.* aggregate in
     * statsz) — callers comparing counters drain here first.
     */
    void waitIdle();

    /**
     * Drain: stop admitting (503), finish nothing further, and fail
     * every still-queued request with 503. Idempotent; the destructor
     * calls it.
     */
    void stop();

    unsigned jobs() const { return jobs_; }
    std::size_t queueCapacity() const { return options_.queueCapacity; }

  private:
    struct Pending
    {
        ExperimentSpec spec;
        std::chrono::steady_clock::time_point enqueued;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline;
        std::promise<ServeResult> promise;
    };

    void dispatchLoop();
    void runBatch(std::vector<std::shared_ptr<Pending>> batch);
    ServeResult runSpec(const ExperimentSpec& spec, u64 queue_wait_us);
    static ServeResult errorResult(int status, const std::string& message,
                                   int retry_after_s = 0);

    ServerOptions options_;
    unsigned jobs_;

    std::mutex mutex_;                      ///< queue + lifecycle state
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::deque<std::shared_ptr<Pending>> queue_;
    bool paused_ = false;
    bool stopping_ = false;
    bool batchInFlight_ = false;

    // Dispatcher-owned (never touched while a batch is in flight):
    // the persistent worker pool and one snapshot store per worker.
    runner::TrialScheduler scheduler_;
    std::vector<std::unique_ptr<snap::SnapshotStore>> stores_;

    std::mutex statsMutex_;                 ///< guards the two below
    obs::MetricsRegistry measured_;
    snap::StoreStats snapStats_;            ///< aggregated after each batch

    std::thread dispatcher_;
};

} // namespace phantom::serve

#endif // PHANTOM_SERVE_SERVER_HPP
