/**
 * @file
 * The experiment service: a bounded admission queue in front of a
 * snapshot-pooling worker dispatcher.
 *
 * Request flow:
 *
 *   Server::run(spec, ctx)                   (any caller thread, blocking)
 *     ├─ semantic validation (uarch resolves, kinds map)   → 400
 *     ├─ admission: queue full?                            → 429
 *     └─ enqueue + wait on a future
 *   dispatcher thread
 *     ├─ drains the whole queue into one batch
 *     ├─ groups requests by ExperimentSpec::batchKey()
 *     └─ scheduler_.forEach(one task per GROUP)
 *   worker w (TrialScheduler thread, snap store w ambient)
 *     ├─ expired deadline?                                 → 504
 *     └─ StageExperiment::run → phantom-bench-results/v2 doc
 *
 * Scheduling one task per *group* (not per request) is what makes the
 * snapshot pooling work: every request of a group lands on the same
 * worker, whose per-shard snap::SnapshotStore already holds the warm
 * parent after the first request — the rest CoW-fork it instead of
 * retraining (snap.captures + snap.forks counters prove it). Stores
 * persist across batches, so a popular spec stays warm for the
 * daemon's lifetime.
 *
 * Observability (request-scoped, SERVING.md "Service observability"):
 * every request carries an obs::RequestTimeline — a monotonic id
 * assigned at accept plus nanosecond marks at each lifecycle stage —
 * threaded through validation, the queue, the worker (the train-or-fork
 * / execute split comes from the StageExperiment onWarmReady hook), and
 * back out. finishRequest() folds the timeline into per-stage log2
 * latency histograms and per-status-code counters (scrapable at
 * /metricsz as Prometheus 0.0.4 text), pushes it onto the bounded
 * recent-timeline ring surfaced by /statsz, and emits one JSON
 * access-log line when PHANTOM_SERVE_LOG is configured. Requests slower
 * than slowRequestMs additionally export the worker's pipeline trace
 * ring as a Chrome trace named by request id into flightDir (bounded
 * file count, oldest evicted — never silently).
 *
 * Determinism: a response's "experiments", "metrics.deterministic" and
 * "metrics.manifest" subtrees derive only from seeded simulation —
 * identical specs get bit-identical subtrees regardless of queueing,
 * batching, or concurrency, and none of the instrumentation above can
 * perturb them. "metrics.measured" carries per-request wall-clock and
 * legitimately varies.
 */

#ifndef PHANTOM_SERVE_SERVER_HPP
#define PHANTOM_SERVE_SERVER_HPP

#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "runner/json.hpp"
#include "runner/scheduler.hpp"
#include "serve/spec.hpp"
#include "snap/store.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace phantom::serve {

struct ServerOptions
{
    /** slowRequestMs value meaning "flight recorder off". */
    static constexpr u64 kSlowDisabled = ~u64{0};

    unsigned jobs = 0;              ///< worker count; 0 = jobsFromEnv()
    std::size_t queueCapacity = 64; ///< admitted-but-unstarted requests
    u64 defaultDeadlineMs = 0;      ///< applied when a spec has none; 0 = ∞

    /** Requests taking at least this many ms export a flight trace;
     *  0 records every request, kSlowDisabled records none. */
    u64 slowRequestMs = kSlowDisabled;
    std::string flightDir = ".";    ///< where flight traces are written
    std::size_t flightMaxFiles = 16;   ///< bounded; oldest evicted
    std::size_t timelineRingCapacity = 64;  ///< /statsz recent timelines
};

/**
 * ServerOptions populated from the PHANTOM_SERVE_* environment
 * (strictly validated, runner/env.hpp): QUEUE, DEADLINE_MS, SLOW_MS
 * (unset = flight recorder off) and FLIGHT_DIR, layered over @p base.
 */
ServerOptions serverOptionsFromEnv(ServerOptions base = {});

/** Outcome of one request: an HTTP status plus a JSON body. */
struct ServeResult
{
    int status = 200;
    int retryAfterS = 0;   ///< nonzero on 429, for the Retry-After header
    runner::JsonValue body;
};

/**
 * Everything the service knows about one in-flight request besides its
 * spec: the timeline (id + stage marks) plus the access-log fields the
 * transport layer fills in (peer, method, target, status, bytes).
 * Created by Server::beginRequest(), closed by Server::finishRequest().
 */
struct RequestContext
{
    obs::RequestTimeline timeline;
    std::string peer = "local";
    std::string method;
    std::string target;
    std::string batchKey;           ///< filled once the spec validates
    std::string warmSource = "none";  ///< "capture" | "fork" | "none"
    int status = 0;
    u64 responseBytes = 0;
    bool finished = false;
};

class Server
{
  public:
    explicit Server(const ServerOptions& options = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Open a request: assigns the next monotonic request id and marks
     * the timeline's Accepted stage. The id travels back to clients in
     * the X-Phantom-Request-Id header and error bodies.
     */
    RequestContext beginRequest(const std::string& method,
                                const std::string& target,
                                const std::string& peer = "local");

    /**
     * Execute @p spec and block until its result is ready, stamping
     * @p ctx's timeline along the way. Safe to call from any number of
     * threads concurrently (each with its own context). Never throws:
     * failures come back as a 4xx/5xx status with a kServeErrorSchema
     * body carrying the request id.
     */
    ServeResult run(const ExperimentSpec& spec, RequestContext& ctx);

    /** run() with an internally managed context (begin + run + finish). */
    ServeResult run(const ExperimentSpec& spec);

    /**
     * Close a request: marks Written, folds the timeline into the
     * per-stage histograms / per-status counters / recent-timeline
     * ring, and emits the JSON access-log line (when enabled).
     * Idempotent per context.
     */
    void finishRequest(RequestContext& ctx);

    /** Liveness document (kServeHealthSchema). */
    runner::JsonValue healthz() const;

    /** Counters/gauges/queue depth/recent timelines (kServeStatsSchema). */
    runner::JsonValue statsz();

    /**
     * Host-time self-profile snapshot (kServeProfileSchema wrapping a
     * kProfileSchema document). Always routable; the embedded profile
     * is empty until PHANTOM_PROF=1 turns the probes on.
     */
    runner::JsonValue profilez();

    /** Prometheus text exposition (0.0.4) of the measured registry. */
    std::string metricsText();

    /** Whole seconds since the server was constructed. */
    u64 uptimeSeconds() const;

    /** Admitted-but-unstarted requests right now. */
    std::size_t queueDepth();

    /**
     * Test hook: while paused the dispatcher admits (or 429s) but does
     * not start work, so tests can deterministically fill the queue,
     * force batching, or let deadlines lapse. Unpausing dispatches the
     * accumulated batch at once.
     */
    void setDispatchPaused(bool paused);

    /**
     * Block until the queue is empty and no batch is in flight. A
     * request's future resolves inside the batch, slightly before the
     * dispatcher's end-of-batch bookkeeping (the snap.* aggregate in
     * statsz) — callers comparing counters drain here first.
     */
    void waitIdle();

    /**
     * Drain: stop admitting (503), finish nothing further, and fail
     * every still-queued request with 503. Idempotent; the destructor
     * calls it.
     */
    void stop();

    unsigned jobs() const { return jobs_; }
    std::size_t queueCapacity() const { return options_.queueCapacity; }

  private:
    struct Pending
    {
        ExperimentSpec spec;
        RequestContext* ctx = nullptr;  ///< outlives the future hand-off
        std::chrono::steady_clock::time_point enqueued;
        bool hasDeadline = false;
        std::chrono::steady_clock::time_point deadline;
        std::promise<ServeResult> promise;
    };

    void dispatchLoop();
    void runBatch(std::vector<std::shared_ptr<Pending>> batch);
    ServeResult runSpec(const ExperimentSpec& spec, u64 queue_wait_us,
                        RequestContext& ctx);
    void exportFlightTrace(const RequestContext& ctx, unsigned worker);
    static ServeResult errorResult(int status, const std::string& message,
                                   u64 request_id, int retry_after_s = 0);

    ServerOptions options_;
    unsigned jobs_;
    std::chrono::steady_clock::time_point started_;
    std::atomic<u64> nextRequestId_{0};

    std::mutex mutex_;                      ///< queue + lifecycle state
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::deque<std::shared_ptr<Pending>> queue_;
    bool paused_ = false;
    bool stopping_ = false;
    bool batchInFlight_ = false;

    // Dispatcher-owned (never touched while a batch is in flight):
    // the persistent worker pool, one snapshot store per worker, and —
    // when the flight recorder is on — one pipeline trace ring per
    // worker, cleared at each request so a snapshot is request-scoped.
    runner::TrialScheduler scheduler_;
    std::vector<std::unique_ptr<snap::SnapshotStore>> stores_;
    std::vector<std::unique_ptr<obs::RingTraceSink>> rings_;

    std::mutex statsMutex_;                 ///< guards the four below
    obs::MetricsRegistry measured_;
    snap::StoreStats snapStats_;            ///< aggregated after each batch
    obs::TimelineRing recent_;              ///< last N completed requests
    std::deque<std::string> flightFiles_;   ///< exported traces, oldest first

    std::thread dispatcher_;
};

} // namespace phantom::serve

#endif // PHANTOM_SERVE_SERVER_HPP
