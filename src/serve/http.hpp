/**
 * @file
 * Dependency-free HTTP/1.1 subset for the experiment daemon.
 *
 * The parser is deliberately socket-free: parseRequestHead() and
 * parseResponse() operate on byte buffers so the serve_fuzz harness can
 * drive them with malformed input (garbled request lines, truncated
 * heads, oversized Content-Length) and assert they answer with a 4xx/5xx
 * status instead of crashing. The daemon (src/serve/daemon.cpp) and the
 * client helper below are thin socket loops around these functions.
 *
 * Supported: one request per connection (the daemon always answers
 * `Connection: close`), fixed Content-Length bodies, no chunked
 * transfer coding (501), HTTP/1.0 and 1.1 only (505).
 */

#ifndef PHANTOM_SERVE_HTTP_HPP
#define PHANTOM_SERVE_HTTP_HPP

#include "sim/types.hpp"

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace phantom::serve {

/** Hard input limits; everything beyond them is rejected, not buffered. */
struct HttpLimits
{
    std::size_t maxRequestLine = 8 * 1024;    ///< 431 beyond this
    std::size_t maxHeaderBytes = 64 * 1024;   ///< 431 beyond this
    std::size_t maxBodyBytes = 1024 * 1024;   ///< 413 beyond this
};

struct HttpRequest
{
    std::string method;    ///< e.g. "POST" (verbatim, case-sensitive)
    std::string target;    ///< e.g. "/run"
    std::string version;   ///< "HTTP/1.0" or "HTTP/1.1"
    /** Parsed headers, names lowercased, in arrival order. */
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    /** Remote endpoint ("ip:port"); filled by the daemon at accept,
     *  not by the parser — buffers carry no peer identity. */
    std::string peer;

    /** Value of lowercase @p name, or nullptr when absent. */
    const std::string* header(const std::string& name) const;
};

struct HttpResponse
{
    int status = 200;
    std::vector<std::pair<std::string, std::string>> headers;
    std::string body;

    const std::string* header(const std::string& name) const;
};

/** Canonical reason phrase for the status codes the daemon emits. */
const char* statusReason(int status);

/** Outcome of parsing a request head (request line + headers). */
struct HttpParseResult
{
    bool ok = false;
    /** HTTP status to answer with when !ok (400/413/431/501/505). */
    int status = 400;
    std::string error;          ///< one-line parse diagnostic
    std::size_t contentLength = 0;
    std::size_t headBytes = 0;  ///< bytes consumed through the blank line
};

/**
 * Parse @p data as a request head. @p data must contain the terminating
 * blank line ("\r\n\r\n"); on success @p out holds method/target/version
 * and the headers, and the result carries the declared Content-Length
 * (validated against @p limits.maxBodyBytes — oversized bodies are a
 * 413 before a single body byte is read).
 */
HttpParseResult parseRequestHead(std::string_view data, HttpRequest& out,
                                 const HttpLimits& limits = {});

/** Offset one past "\r\n\r\n" in @p data, or npos when incomplete. */
std::size_t findHeadEnd(std::string_view data);

/** Serialize a request (adds Content-Length and Connection: close). */
std::string serializeRequest(const HttpRequest& request);

/** Serialize a response (adds Content-Length and Connection: close). */
std::string serializeResponse(const HttpResponse& response);

/**
 * Parse a full response buffer (status line + headers + body). Client
 * side only, so the policy is lenient: the body is whatever follows the
 * blank line. Returns false on a garbled status line.
 */
bool parseResponse(std::string_view data, HttpResponse& out,
                   std::string* error);

/**
 * One blocking request/response exchange with 127.0.0.1:@p port.
 * Returns false (with @p error) on connect/send/recv failure or a
 * garbled response.
 */
bool httpRoundTrip(int port, const HttpRequest& request,
                   HttpResponse& response, std::string* error);

} // namespace phantom::serve

#endif // PHANTOM_SERVE_HTTP_HPP
