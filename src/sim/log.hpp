/**
 * @file
 * Minimal leveled logging. Off by default; experiments flip it on for
 * debugging without recompiling (PHANTOM_LOG env var or setLogLevel()).
 *
 * All messages go through a single std::ostream*, written one complete
 * line at a time under a mutex, so concurrent scheduler workers never
 * interleave partial lines. PHANTOM_LOG_FILE=<path> redirects the
 * stream to a file at startup (default: stderr). Every line carries a
 * monotonic-timestamp + level prefix, `[phantom:WARN t=<ns>]`, where
 * t is nanoseconds of steady clock since the first log line — so
 * interleaved diagnostics from concurrent workers can be ordered after
 * the fact.
 *
 * The same single-writer mutex also serializes the *access log*: a
 * second, prefix-free line channel the experiment daemon uses for its
 * JSON-lines request log (SERVING.md). It is disabled unless
 * PHANTOM_SERVE_LOG=<path> names a destination file or a test installs
 * a stream via setAccessLogStream().
 */

#ifndef PHANTOM_SIM_LOG_HPP
#define PHANTOM_SIM_LOG_HPP

#include "sim/types.hpp"

#include <ostream>
#include <sstream>
#include <string>

namespace phantom {

enum class LogLevel { None = 0, Error = 1, Warn = 2, Info = 3, Trace = 4 };

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

/** Current global log threshold (initialized from PHANTOM_LOG if set). */
LogLevel logLevel();

/** The prefix name of @p level: "ERROR", "WARN", "INFO", "TRACE" —
 *  exactly what appears in the `[phantom:LEVEL t=<ns>]` line prefix. */
const char* logLevelName(LogLevel level);

/**
 * Redirect logging to @p stream (non-owning; nullptr restores the
 * default: PHANTOM_LOG_FILE if set and openable, else stderr). The
 * stream must outlive any subsequent logging.
 */
void setLogStream(std::ostream* stream);

/** The stream logMessage currently writes to. */
std::ostream& logStream();

/** Emit @p msg if @p level is at or below the threshold. Thread-safe:
 *  the line is formatted first, then written and flushed under a mutex. */
void logMessage(LogLevel level, const std::string& msg);

/** Monotonic nanoseconds since the first call — the `t=` prefix base. */
u64 logMonotonicNanos();

/** True when an access-log destination is configured (PHANTOM_SERVE_LOG
 *  or an explicit setAccessLogStream()); callers can skip formatting
 *  entirely when it is not. */
bool accessLogEnabled();

/**
 * Redirect the access log to @p stream (non-owning; nullptr restores
 * the default: the PHANTOM_SERVE_LOG file, else disabled). The stream
 * must outlive any subsequent logging.
 */
void setAccessLogStream(std::ostream* stream);

/** Write one pre-formatted access-log line (no prefix is added) and
 *  flush, under the same single-writer mutex as logMessage(). A no-op
 *  while the access log is disabled. */
void logAccessLine(const std::string& line);

namespace detail {

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

template <typename... Args>
void
logError(Args&&... args)
{
    if (logLevel() >= LogLevel::Error)
        logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logWarn(Args&&... args)
{
    if (logLevel() >= LogLevel::Warn)
        logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logInfo(Args&&... args)
{
    if (logLevel() >= LogLevel::Info)
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logTrace(Args&&... args)
{
    if (logLevel() >= LogLevel::Trace)
        logMessage(LogLevel::Trace, detail::concat(std::forward<Args>(args)...));
}

} // namespace phantom

#endif // PHANTOM_SIM_LOG_HPP
