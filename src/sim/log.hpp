/**
 * @file
 * Minimal leveled logging. Off by default; experiments flip it on for
 * debugging without recompiling (PHANTOM_LOG env var or setLogLevel()).
 *
 * All messages go through a single std::ostream*, written one complete
 * line at a time under a mutex, so concurrent scheduler workers never
 * interleave partial lines. PHANTOM_LOG_FILE=<path> redirects the
 * stream to a file at startup (default: stderr).
 */

#ifndef PHANTOM_SIM_LOG_HPP
#define PHANTOM_SIM_LOG_HPP

#include <ostream>
#include <sstream>
#include <string>

namespace phantom {

enum class LogLevel { None = 0, Error = 1, Warn = 2, Info = 3, Trace = 4 };

/** Set the global log threshold. */
void setLogLevel(LogLevel level);

/** Current global log threshold (initialized from PHANTOM_LOG if set). */
LogLevel logLevel();

/**
 * Redirect logging to @p stream (non-owning; nullptr restores the
 * default: PHANTOM_LOG_FILE if set and openable, else stderr). The
 * stream must outlive any subsequent logging.
 */
void setLogStream(std::ostream* stream);

/** The stream logMessage currently writes to. */
std::ostream& logStream();

/** Emit @p msg if @p level is at or below the threshold. Thread-safe:
 *  the line is formatted first, then written and flushed under a mutex. */
void logMessage(LogLevel level, const std::string& msg);

namespace detail {

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

template <typename... Args>
void
logError(Args&&... args)
{
    if (logLevel() >= LogLevel::Error)
        logMessage(LogLevel::Error, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logWarn(Args&&... args)
{
    if (logLevel() >= LogLevel::Warn)
        logMessage(LogLevel::Warn, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logInfo(Args&&... args)
{
    if (logLevel() >= LogLevel::Info)
        logMessage(LogLevel::Info, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void
logTrace(Args&&... args)
{
    if (logLevel() >= LogLevel::Trace)
        logMessage(LogLevel::Trace, detail::concat(std::forward<Args>(args)...));
}

} // namespace phantom

#endif // PHANTOM_SIM_LOG_HPP
