#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace phantom {

namespace {

LogLevel
initialLevel()
{
    if (const char* env = std::getenv("PHANTOM_LOG")) {
        int v = std::atoi(env);
        if (v >= 0 && v <= 4)
            return static_cast<LogLevel>(v);
    }
    return LogLevel::None;
}

LogLevel gLevel = initialLevel();

const char*
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Trace: return "TRACE";
      default:              return "?";
    }
}

} // namespace

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
logMessage(LogLevel level, const std::string& msg)
{
    std::fprintf(stderr, "[phantom:%s] %s\n", levelName(level), msg.c_str());
}

} // namespace phantom
