#include "sim/log.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>

namespace phantom {

namespace {

LogLevel
initialLevel()
{
    if (const char* env = std::getenv("PHANTOM_LOG")) {
        int v = std::atoi(env);
        if (v >= 0 && v <= 4)
            return static_cast<LogLevel>(v);
    }
    return LogLevel::None;
}

LogLevel gLevel = initialLevel();

/**
 * Prefixed line for the bootstrap warnings emitted while the default
 * stream is still being resolved. Those run under the log mutex, so
 * they cannot go through logMessage() — but they must still carry the
 * same `[phantom:LEVEL t=<ns>]` prefix every other line does, or a
 * prefix-keyed log scraper silently drops them.
 */
std::string
bootstrapLine(LogLevel level, const std::string& msg)
{
    char t[32];
    std::snprintf(t, sizeof t, " t=%llu",
                  static_cast<unsigned long long>(logMonotonicNanos()));
    return std::string("[phantom:") + logLevelName(level) + t + "] " +
           msg + "\n";
}

std::mutex&
logMutex()
{
    static std::mutex mutex;
    return mutex;
}

/** PHANTOM_LOG_FILE target, or std::cerr when unset/unopenable. */
std::ostream&
defaultStream()
{
    static std::ofstream file;
    static std::ostream* stream = [] {
        const char* path = std::getenv("PHANTOM_LOG_FILE");
        if (path != nullptr && *path != '\0') {
            file.open(path, std::ios::app);
            if (file.is_open())
                return static_cast<std::ostream*>(&file);
            std::cerr << bootstrapLine(
                LogLevel::Warn,
                std::string("cannot open PHANTOM_LOG_FILE=") + path +
                    ", logging to stderr");
        }
        return &std::cerr;
    }();
    return *stream;
}

std::ostream* gStream = nullptr;    // nullptr = defaultStream()

/** PHANTOM_SERVE_LOG target, or nullptr when the access log is off. */
std::ostream*
defaultAccessStream()
{
    static std::ofstream file;
    static std::ostream* stream = []() -> std::ostream* {
        const char* path = std::getenv("PHANTOM_SERVE_LOG");
        if (path != nullptr && *path != '\0') {
            file.open(path, std::ios::app);
            if (file.is_open())
                return &file;
            std::cerr << bootstrapLine(
                LogLevel::Warn,
                std::string("cannot open PHANTOM_SERVE_LOG=") + path +
                    ", access log disabled");
        }
        return nullptr;
    }();
    return stream;
}

std::ostream* gAccessStream = nullptr;  // nullptr = defaultAccessStream()

} // namespace

u64
logMonotonicNanos()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - epoch);
    return ns.count() < 0 ? 0 : static_cast<u64>(ns.count());
}

void
setLogLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
logLevel()
{
    return gLevel;
}

void
setLogStream(std::ostream* stream)
{
    std::lock_guard<std::mutex> lock(logMutex());
    gStream = stream;
}

std::ostream&
logStream()
{
    std::lock_guard<std::mutex> lock(logMutex());
    return gStream != nullptr ? *gStream : defaultStream();
}

const char*
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Trace: return "TRACE";
      default:              return "?";
    }
}

void
logMessage(LogLevel level, const std::string& msg)
{
    // Format the whole line before taking the lock: the critical
    // section is one streamed write plus a flush, so worker threads
    // can never interleave partial lines.
    char t[32];
    std::snprintf(t, sizeof t, " t=%llu",
                  static_cast<unsigned long long>(logMonotonicNanos()));
    std::string line;
    line.reserve(msg.size() + 48);
    line += "[phantom:";
    line += logLevelName(level);
    line += t;
    line += "] ";
    line += msg;
    line += '\n';

    std::lock_guard<std::mutex> lock(logMutex());
    std::ostream& out = gStream != nullptr ? *gStream : defaultStream();
    out << line;
    out.flush();
}

bool
accessLogEnabled()
{
    std::lock_guard<std::mutex> lock(logMutex());
    return gAccessStream != nullptr || defaultAccessStream() != nullptr;
}

void
setAccessLogStream(std::ostream* stream)
{
    std::lock_guard<std::mutex> lock(logMutex());
    gAccessStream = stream;
}

void
logAccessLine(const std::string& line)
{
    std::lock_guard<std::mutex> lock(logMutex());
    std::ostream* out =
        gAccessStream != nullptr ? gAccessStream : defaultAccessStream();
    if (out == nullptr)
        return;
    *out << line << '\n';
    out->flush();
}

} // namespace phantom
