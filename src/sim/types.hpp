/**
 * @file
 * Fundamental type aliases and address helpers shared by every module.
 */

#ifndef PHANTOM_SIM_TYPES_HPP
#define PHANTOM_SIM_TYPES_HPP

#include <cstdint>
#include <cstddef>

namespace phantom {

/** Virtual address. Canonical x86-64 form: bits [63:48] are a sign
 *  extension of bit 47. */
using VAddr = std::uint64_t;

/** Physical address. */
using PAddr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Privilege mode of the executing context. */
enum class Privilege : u8 { User = 0, Kernel = 1 };

/** Bytes per cache line throughout the machine. */
inline constexpr u64 kCacheLineBytes = 64;

/** Bytes per small page. */
inline constexpr u64 kPageBytes = 4096;

/** Bytes per huge page (2 MiB). */
inline constexpr u64 kHugePageBytes = 2ull * 1024 * 1024;

/** Extract bit @p n of @p v as 0/1. */
constexpr u64
bit(u64 v, unsigned n)
{
    return (v >> n) & 1;
}

/** Extract bits [hi:lo] of @p v. */
constexpr u64
bits(u64 v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo >= 63) ? ~0ull : ((1ull << (hi - lo + 1)) - 1));
}

/** Round @p v down to a multiple of @p align (power of two). */
constexpr u64
alignDown(u64 v, u64 align)
{
    return v & ~(align - 1);
}

/** Round @p v up to a multiple of @p align (power of two). */
constexpr u64
alignUp(u64 v, u64 align)
{
    return (v + align - 1) & ~(align - 1);
}

/** True if @p va has canonical x86-64 form. */
constexpr bool
isCanonical(VAddr va)
{
    u64 top = va >> 47;
    return top == 0 || top == 0x1ffff;
}

/** Sign-extend bit 47 to produce a canonical address. */
constexpr VAddr
canonicalize(VAddr va)
{
    return bit(va, 47) ? (va | 0xffff000000000000ull)
                       : (va & 0x0000ffffffffffffull);
}

} // namespace phantom

#endif // PHANTOM_SIM_TYPES_HPP
