/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the simulator (noise injection, KASLR slot
 * selection, random payloads) draws from an explicitly seeded Rng so that
 * experiments are reproducible run-to-run.
 */

#ifndef PHANTOM_SIM_RNG_HPP
#define PHANTOM_SIM_RNG_HPP

#include "sim/types.hpp"

#include <cassert>
#include <cstddef>

namespace phantom {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical quality
 * for simulation noise; crucially, fully deterministic for a given seed.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize state from a 64-bit seed via splitmix64. */
    void
    reseed(u64 seed)
    {
        for (auto& word : state_) {
            seed += 0x9e3779b97f4a7c15ull;
            u64 z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next 64 uniformly random bits. */
    u64
    next()
    {
        u64 result = rotl(state_[1] * 5, 7) * 9;
        u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    u64
    below(u64 bound)
    {
        assert(bound != 0);
        // Rejection sampling to avoid modulo bias.
        u64 threshold = (~bound + 1) % bound;
        for (;;) {
            u64 r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    u64
    range(u64 lo, u64 hi)
    {
        assert(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Bernoulli draw with probability @p p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return toDouble(next()) < p;
    }

    /** Uniform double in [0, 1). */
    double uniform() { return toDouble(next()); }

    /** Number of 64-bit state words (snapshot serialization). */
    static constexpr std::size_t kStateWords = 4;

    /** Copy out the raw generator state (snapshot capture). */
    void
    stateWords(u64 out[kStateWords]) const
    {
        for (std::size_t i = 0; i < kStateWords; ++i)
            out[i] = state_[i];
    }

    /** Restore raw generator state captured by stateWords(). */
    void
    setStateWords(const u64 in[kStateWords])
    {
        for (std::size_t i = 0; i < kStateWords; ++i)
            state_[i] = in[i];
    }

  private:
    static u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

    static double
    toDouble(u64 x)
    {
        return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
    }

    u64 state_[4];
};

} // namespace phantom

#endif // PHANTOM_SIM_RNG_HPP
