/**
 * @file
 * Descriptive statistics used when reporting experiment results
 * (median run times, geometric-mean overheads, accuracies).
 */

#ifndef PHANTOM_SIM_STATS_HPP
#define PHANTOM_SIM_STATS_HPP

#include <cstddef>
#include <vector>

namespace phantom {

/** Arithmetic mean of @p xs; 0 for an empty vector. */
double mean(const std::vector<double>& xs);

/** Population standard deviation of @p xs; 0 for fewer than two samples. */
double stddev(const std::vector<double>& xs);

/** Median of @p xs (average of middle pair for even sizes); 0 if empty. */
double median(std::vector<double> xs);

/** Geometric mean of @p xs; all entries must be positive. 0 if empty. */
double geomean(const std::vector<double>& xs);

/** @p q-quantile (0..1) of @p xs using linear interpolation. */
double quantile(std::vector<double> xs, double q);

/** Fraction of true entries, in [0, 1]; 0 if empty. */
double successRate(const std::vector<bool>& xs);

/**
 * Accumulating counter with summary accessors, used by the benchmark
 * harnesses to collect per-run samples.
 */
class SampleSet
{
  public:
    void add(double x) { samples_.push_back(x); }

    std::size_t count() const { return samples_.size(); }
    double mean() const { return phantom::mean(samples_); }
    double median() const { return phantom::median(samples_); }
    double geomean() const { return phantom::geomean(samples_); }
    double stddev() const { return phantom::stddev(samples_); }
    double quantile(double q) const { return phantom::quantile(samples_, q); }

    const std::vector<double>& samples() const { return samples_; }

  private:
    std::vector<double> samples_;
};

} // namespace phantom

#endif // PHANTOM_SIM_STATS_HPP
