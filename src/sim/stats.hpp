/**
 * @file
 * Descriptive statistics used when reporting experiment results
 * (median run times, geometric-mean overheads, accuracies).
 */

#ifndef PHANTOM_SIM_STATS_HPP
#define PHANTOM_SIM_STATS_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

namespace phantom {

/** Arithmetic mean of @p xs; 0 for an empty vector. */
double mean(const std::vector<double>& xs);

/** Population standard deviation of @p xs; 0 for fewer than two samples. */
double stddev(const std::vector<double>& xs);

/** Median of @p xs (average of middle pair for even sizes); 0 if empty. */
double median(std::vector<double> xs);

/** Geometric mean of @p xs; all entries must be positive. 0 if empty. */
double geomean(const std::vector<double>& xs);

/** @p q-quantile (0..1) of @p xs using linear interpolation. */
double quantile(std::vector<double> xs, double q);

/** median() for @p sorted_xs already in ascending order. */
double medianSorted(const std::vector<double>& sorted_xs);

/** quantile() for @p sorted_xs already in ascending order. */
double quantileSorted(const std::vector<double>& sorted_xs, double q);

/** Fraction of true entries, in [0, 1]; 0 if empty. */
double successRate(const std::vector<bool>& xs);

/**
 * Accumulating counter with summary accessors, used by the benchmark
 * harnesses to collect per-run samples.
 */
class SampleSet
{
  public:
    void
    add(double x)
    {
        samples_.push_back(x);
        sortedValid_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    double mean() const { return phantom::mean(samples_); }
    double median() const { return phantom::medianSorted(sorted()); }
    double geomean() const { return phantom::geomean(samples_); }
    double stddev() const { return phantom::stddev(samples_); }
    double
    quantile(double q) const
    {
        return phantom::quantileSorted(sorted(), q);
    }

    const std::vector<double>& samples() const { return samples_; }

    /**
     * Samples in ascending order. Cached: repeated median()/quantile()
     * calls sort once, and add() invalidates. (Not thread-safe; shards
     * merge into a SampleSet only after the workers have joined.)
     */
    const std::vector<double>&
    sorted() const
    {
        if (!sortedValid_) {
            sorted_ = samples_;
            std::sort(sorted_.begin(), sorted_.end());
            sortedValid_ = true;
        }
        return sorted_;
    }

  private:
    std::vector<double> samples_;
    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;
};

} // namespace phantom

#endif // PHANTOM_SIM_STATS_HPP
