#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace phantom {

double
mean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double>& xs)
{
    if (xs.size() < 2)
        return 0.0;
    double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return medianSorted(xs);
}

double
medianSorted(const std::vector<double>& sorted_xs)
{
    if (sorted_xs.empty())
        return 0.0;
    std::size_t n = sorted_xs.size();
    if (n % 2 == 1)
        return sorted_xs[n / 2];
    return 0.5 * (sorted_xs[n / 2 - 1] + sorted_xs[n / 2]);
}

double
geomean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : xs) {
        assert(x > 0.0);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

double
quantile(std::vector<double> xs, double q)
{
    std::sort(xs.begin(), xs.end());
    return quantileSorted(xs, q);
}

double
quantileSorted(const std::vector<double>& sorted_xs, double q)
{
    if (sorted_xs.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    double pos = q * static_cast<double>(sorted_xs.size() - 1);
    std::size_t lo = static_cast<std::size_t>(pos);
    std::size_t hi = std::min(lo + 1, sorted_xs.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return sorted_xs[lo] * (1.0 - frac) + sorted_xs[hi] * frac;
}

double
successRate(const std::vector<bool>& xs)
{
    if (xs.empty())
        return 0.0;
    std::size_t hits = 0;
    for (bool x : xs)
        hits += x ? 1 : 0;
    return static_cast<double>(hits) / static_cast<double>(xs.size());
}

} // namespace phantom
