/**
 * @file
 * Streaming FNV-1a digest.
 *
 * Used to stamp snapshot images (integrity of serialized machine state)
 * and to fingerprint live machine state for the replay/divergence
 * checker. Not cryptographic — it defends against truncation, bit flips
 * and stale images, not adversaries.
 */

#ifndef PHANTOM_SIM_DIGEST_HPP
#define PHANTOM_SIM_DIGEST_HPP

#include "sim/types.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace phantom {

/** Incremental 64-bit FNV-1a hasher. */
class Digest
{
  public:
    static constexpr u64 kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr u64 kPrime = 0x100000001b3ull;

    /** Fold @p n raw bytes into the digest. */
    void
    update(const void* data, std::size_t n)
    {
        const u8* p = static_cast<const u8*>(data);
        for (std::size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= kPrime;
        }
    }

    void update(const std::vector<u8>& bytes)
    {
        update(bytes.data(), bytes.size());
    }

    /** Fold a 64-bit value in a fixed little-endian byte order, so the
     *  digest is identical across host endianness. */
    void
    update64(u64 v)
    {
        u8 le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<u8>(v >> (8 * i));
        update(le, sizeof(le));
    }

    void update8(u8 v) { update(&v, 1); }

    void
    updateString(const std::string& s)
    {
        update64(s.size());
        update(s.data(), s.size());
    }

    u64 value() const { return hash_; }

    /** One-shot digest of a byte range. */
    static u64
    of(const void* data, std::size_t n)
    {
        Digest d;
        d.update(data, n);
        return d.value();
    }

  private:
    u64 hash_ = kOffsetBasis;
};

} // namespace phantom

#endif // PHANTOM_SIM_DIGEST_HPP
