/**
 * @file
 * Streaming lane-parallel FNV digest.
 *
 * Used to stamp snapshot images (integrity of serialized machine state)
 * and to fingerprint live machine state for the replay/divergence
 * checker. Not cryptographic — it defends against truncation, bit flips
 * and stale images, not adversaries.
 *
 * Byte-serial FNV-1a is a single xor-multiply dependency chain, which
 * caps it near one byte per multiply latency — too slow for the
 * megabytes of frame payload a full machine snapshot digests (the fuzz
 * campaign serializes thousands of them per run). This digest instead
 * runs eight independent FNV-1a lanes over interleaved little-endian
 * 64-bit words, so the multiplies pipeline, and folds the lanes, the
 * buffered tail bytes and the total stream length into one 64-bit
 * value. The result is chunking-independent (splitting one update()
 * into many never changes the value) and endian-independent, but it is
 * NOT the classic FNV-1a value; snapshot images carry kImageVersion so
 * images stamped by one digest generation are never misread by another.
 */

#ifndef PHANTOM_SIM_DIGEST_HPP
#define PHANTOM_SIM_DIGEST_HPP

#include "sim/types.hpp"

#include <bit>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace phantom {

/** Incremental 64-bit eight-lane FNV-style hasher. */
class Digest
{
  public:
    static constexpr u64 kOffsetBasis = 0xcbf29ce484222325ull;
    static constexpr u64 kPrime = 0x100000001b3ull;

    Digest()
    {
        for (std::size_t i = 0; i < kLanes; ++i)
            lanes_[i] = kOffsetBasis +
                        0x9e3779b97f4a7c15ull * static_cast<u64>(i);
    }

    /** Fold @p n raw bytes into the digest. */
    void
    update(const void* data, std::size_t n)
    {
        const u8* p = static_cast<const u8*>(data);
        total_ += n;
        if (fill_ > 0) {
            std::size_t take = kBlockBytes - fill_;
            if (take > n)
                take = n;
            std::memcpy(buf_ + fill_, p, take);
            fill_ += take;
            p += take;
            n -= take;
            if (fill_ == kBlockBytes) {
                processBlock(buf_);
                fill_ = 0;
            }
        }
        while (n >= kBlockBytes) {
            processBlock(p);
            p += kBlockBytes;
            n -= kBlockBytes;
        }
        if (n > 0) {
            std::memcpy(buf_ + fill_, p, n);
            fill_ += n;
        }
    }

    void update(const std::vector<u8>& bytes)
    {
        update(bytes.data(), bytes.size());
    }

    /** Fold a 64-bit value in a fixed little-endian byte order, so the
     *  digest is identical across host endianness. */
    void
    update64(u64 v)
    {
        u8 le[8];
        for (int i = 0; i < 8; ++i)
            le[i] = static_cast<u8>(v >> (8 * i));
        update(le, sizeof(le));
    }

    void update8(u8 v) { update(&v, 1); }

    void
    updateString(const std::string& s)
    {
        update64(s.size());
        update(s.data(), s.size());
    }

    u64
    value() const
    {
        // Fold lanes, then the unprocessed tail, then the stream length
        // (so streams differing only in trailing block padding differ).
        u64 h = kOffsetBasis;
        for (u64 lane : lanes_) {
            h ^= lane;
            h *= kPrime;
        }
        for (std::size_t i = 0; i < fill_; ++i) {
            h ^= buf_[i];
            h *= kPrime;
        }
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<u8>(total_ >> (8 * i));
            h *= kPrime;
        }
        return h;
    }

    /** One-shot digest of a byte range. */
    static u64
    of(const void* data, std::size_t n)
    {
        Digest d;
        d.update(data, n);
        return d.value();
    }

  private:
    static constexpr std::size_t kLanes = 8;
    static constexpr std::size_t kBlockBytes = kLanes * 8;

    static u64
    loadLe64(const u8* p)
    {
        if constexpr (std::endian::native == std::endian::little) {
            u64 w;
            std::memcpy(&w, p, sizeof(w));
            return w;
        } else {
            u64 w = 0;
            for (int i = 7; i >= 0; --i)
                w = (w << 8) | p[i];
            return w;
        }
    }

    void
    processBlock(const u8* p)
    {
        for (std::size_t lane = 0; lane < kLanes; ++lane)
            lanes_[lane] =
                (lanes_[lane] ^ loadLe64(p + 8 * lane)) * kPrime;
    }

    u64 lanes_[kLanes];
    u8 buf_[kBlockBytes];
    std::size_t fill_ = 0;
    u64 total_ = 0;
};

} // namespace phantom

#endif // PHANTOM_SIM_DIGEST_HPP
