/**
 * @file
 * Retpoline construction (§2.4, §8 of the paper).
 *
 * A retpoline replaces an indirect branch with a call/ret pair whose
 * return address is overwritten with the real target; the RSB-predicted
 * (wrong) return lands in a speculation trap. This kills classic
 * Spectre-V2 injection at the site — there is no indirect branch left to
 * hijack — but, as the paper's lineage shows:
 *
 *  - on parts with branch type confusion at returns (Zen 1/2), the ret
 *    itself can be hijacked with a jmp*-trained prediction (Retbleed),
 *  - and PHANTOM does not care: it injects predictions at arbitrary
 *    instructions, so rewriting the indirect branches changes nothing.
 */

#ifndef PHANTOM_OS_RETPOLINE_HPP
#define PHANTOM_OS_RETPOLINE_HPP

#include "isa/assembler.hpp"

namespace phantom::os {

/** Emitted-site addresses of one retpoline thunk. */
struct RetpolineSite
{
    VAddr callVa = 0;   ///< the setup call
    VAddr trapVa = 0;   ///< the speculation trap loop
    VAddr retVa = 0;    ///< the ret that performs the indirect transfer
};

/**
 * Emit a retpoline-style indirect jump through @p reg:
 *
 *     call L2
 * L1: lfence            ; speculation trap: an RSB-predicted return
 *     jmp L1            ; lands here and stalls until the resteer
 * L2: mov [rsp], reg    ; overwrite the return address
 *     ret               ; "indirect jump" via the return path
 *
 * @return the site addresses, for tests that target the ret.
 */
inline RetpolineSite
emitRetpolineJmp(isa::Assembler& code, u8 reg)
{
    using namespace isa;
    RetpolineSite site;
    Label trap = code.newLabel();
    Label setup = code.newLabel();

    site.callVa = code.here();
    code.call(setup);
    code.bind(trap);
    site.trapVa = code.here();
    code.lfence();
    code.jmp(trap);
    code.bind(setup);
    code.store(RSP, 0, reg);
    site.retVa = code.here();
    code.ret();
    return site;
}

} // namespace phantom::os

#endif // PHANTOM_OS_RETPOLINE_HPP
