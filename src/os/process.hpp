/**
 * @file
 * An unprivileged user process: address-space setup helpers for the
 * attacker, who controls its own memory layout precisely (the exploits
 * require code at exact BTB-aliasing virtual addresses).
 */

#ifndef PHANTOM_OS_PROCESS_HPP
#define PHANTOM_OS_PROCESS_HPP

#include "os/kernel.hpp"

namespace phantom::os {

/** A user process sharing the kernel's page table (no KPTI). */
class Process
{
  public:
    /** Creates the process stack and points the machine's RSP at it. */
    Process(Kernel& kernel, cpu::Machine& machine);

    /**
     * Map @p code user-executable at exactly @p va (page-aligned
     * start). RX by default; @p writable maps it RWX for guests that
     * rewrite their own instructions (the fuzz harness's self-modifying
     * programs patch code with ordinary stores).
     */
    void mapCode(VAddr va, const std::vector<u8>& code,
                 bool writable = false);

    /** Map @p bytes of user-RW/NX memory at @p va. @return backing PA. */
    PAddr mapData(VAddr va, u64 bytes);

    /**
     * Map one 2 MiB transparent huge page of user data at @p va
     * (@p va must be 2 MiB aligned). Physically contiguous.
     * @param random_placement back the page with a random physical frame
     *        (long-uptime buddy-allocator model) instead of the bump
     *        allocator.
     * @return the backing physical address.
     */
    PAddr mapHugeData(VAddr va, bool random_placement = false);

    /** Top of the process stack (RSP starts just below). */
    VAddr stackTop() const { return kUserStackTop; }

    Kernel& kernel() { return kernel_; }

  private:
    Kernel& kernel_;
    cpu::Machine& machine_;
};

} // namespace phantom::os

#endif // PHANTOM_OS_PROCESS_HPP
