#include "os/process.hpp"

#include <cassert>

namespace phantom::os {

namespace {

constexpr u64 kStackBytes = 64 * 1024;

} // namespace

Process::Process(Kernel& kernel, cpu::Machine& machine)
    : kernel_(kernel), machine_(machine)
{
    mapData(kUserStackTop - kStackBytes, kStackBytes);
    machine_.regs().write(isa::RSP, kUserStackTop - 128);
}

void
Process::mapCode(VAddr va, const std::vector<u8>& code, bool writable)
{
    VAddr page = alignDown(va, kPageBytes);
    u64 span = alignUp(va + code.size(), kPageBytes) - page;
    PAddr pa = kernel_.allocFrames(span);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = writable;
    flags.user = true;
    flags.executable = true;
    for (u64 off = 0; off < span; off += kPageBytes)
        kernel_.pageTable().map4k(page + off, pa + off, flags);
    machine_.physMem().writeBlock(pa + (va - page), code);
}

PAddr
Process::mapData(VAddr va, u64 bytes)
{
    assert(va % kPageBytes == 0);
    u64 span = alignUp(bytes, kPageBytes);
    PAddr pa = kernel_.allocFrames(span);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = true;
    flags.user = true;
    flags.executable = false;
    for (u64 off = 0; off < span; off += kPageBytes)
        kernel_.pageTable().map4k(va + off, pa + off, flags);
    return pa;
}

PAddr
Process::mapHugeData(VAddr va, bool random_placement)
{
    assert(va % kHugePageBytes == 0);
    PAddr pa = random_placement
                   ? kernel_.allocFramesRandom(kHugePageBytes,
                                               kHugePageBytes)
                   : kernel_.allocFrames(kHugePageBytes, kHugePageBytes);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = true;
    flags.user = true;
    flags.executable = false;
    kernel_.pageTable().map2m(va, pa, flags);
    return pa;
}

} // namespace phantom::os
