#include "os/kernel.hpp"

#include "isa/assembler.hpp"

#include <cassert>
#include <stdexcept>

namespace phantom::os {

using namespace isa;

Kernel::Kernel(cpu::Machine& machine, const KernelConfig& config)
    : machine_(machine), rng_(config.seed)
{
    u64 image_slot = config.randomizeImage ? rng_.below(kImageSlots) : 0;
    imageBase_ = kImageRegionBase + image_slot * kImageSlotStride;

    u64 installed = machine_.physMem().installedBytes();
    // The physmap must not overlap the image region; slots are plentiful.
    u64 physmap_slot =
        config.randomizePhysmap ? rng_.below(kPhysmapSlots) : 0;
    physmapBase_ = kPhysmapRegionBase + physmap_slot * kPhysmapSlotStride;
    (void)installed;

    moduleNext_ = kModuleRegionBase +
                  rng_.below(kModuleSlots) * kModuleSlotStride;

    imagePa_ = allocFrames(kImageBytes, kHugePageBytes);

    buildImage();
    mapImage();
    mapPhysmap();

    machine_.setPageTable(&pageTable_);
    machine_.setSyscallEntry(syscallEntry());
}

PAddr
Kernel::allocFrames(u64 bytes, u64 alignment)
{
    bumpPa_ = alignUp(bumpPa_, alignment);
    PAddr pa = bumpPa_;
    bumpPa_ += alignUp(bytes, kPageBytes);
    if (bumpPa_ > machine_.physMem().installedBytes())
        throw std::runtime_error("Kernel::allocFrames: out of physical memory");
    return pa;
}

PAddr
Kernel::allocFramesRandom(u64 bytes, u64 alignment)
{
    u64 installed = machine_.physMem().installedBytes();
    u64 span = alignUp(bytes, kPageBytes);
    // Keep a safety region above the bump allocator so deterministic
    // allocations never collide with randomized ones.
    u64 lo = alignUp(bumpPa_ + (512ull << 20), alignment);
    if (lo + span >= installed)
        return allocFrames(bytes, alignment);
    u64 slots = (installed - span - lo) / alignment;
    return lo + rng_.below(slots + 1) * alignment;
}

void
Kernel::buildImage()
{
    Assembler image(imageBase_);

    // ---- Syscall entry / dispatcher at image offset 0 -------------------
    Label l_getpid = image.newLabel();
    Label l_readv = image.newLabel();
    Label l_out = image.newLabel();
    Label l_getpid_fn = image.newLabel();
    Label l_fdgetpos_fn = image.newLabel();
    Label l_helper_fn = image.newLabel();

    image.cmpImm(RAX, static_cast<i32>(kSysGetpid));
    image.jcc(Cond::Eq, l_getpid);
    image.cmpImm(RAX, static_cast<i32>(kSysReadv));
    image.jcc(Cond::Eq, l_readv);
    // Module dispatch: handler = *(syscall_table + rax * 8).
    image.movReg(R11, RAX);
    image.shl(R11, 3);
    image.movImm(R10, syscallTableVa());
    image.add(R11, R10);
    image.load(R11, R11, 0);
    image.cmpImm(R11, 0);
    image.jcc(Cond::Eq, l_out);
    image.callInd(R11);
    image.jmp(l_out);

    image.bind(l_getpid);
    image.call(l_getpid_fn);
    image.jmp(l_out);

    image.bind(l_readv);
    // The paper's tooling found that RSI (2nd syscall arg) reaches R12
    // by the time __fdget_pos is entered (§7.2).
    image.movReg(R12, RSI);
    image.call(l_fdgetpos_fn);
    image.jmp(l_out);

    image.bind(l_out);
    image.sysret();

    // ---- __task_pid_nr_ns-style function (Listing 1) at 0xf6520 ---------
    image.padTo(imageBase_ + kGetpidGadgetOffset);
    image.bind(l_getpid_fn);
    image.nopN(5);                       // <- the PHANTOM victim nop
    image.push(RBP);
    image.movReg(RBP, RSP);
    image.movImm(RAX, 42);               // the "pid"
    image.pop(RBP);
    image.ret();

    // ---- Disclosure gadget (Listing 3) at 0x41da52 -----------------------
    image.padTo(imageBase_ + kDisclosureGadgetOffset);
    image.load(R12, R12, kDisclosureDisp);   // mov r12, [r12+0xbe0]
    image.ret();

    // ---- __fdget_pos-style function (Listing 2) at 0x41db60 --------------
    image.padTo(imageBase_ + kFdgetPosOffset);
    image.bind(l_fdgetpos_fn);
    image.nopN(5);
    image.push(RBP);
    image.movImm(RSI, 0x4000);
    image.movReg(RBP, RSP);
    image.subImm(RSP, 8);
    fdgetPosCallVa_ = image.here();      // <- the PHANTOM victim call
    image.call(l_helper_fn);
    image.addImm(RSP, 8);
    image.pop(RBP);
    image.ret();

    image.bind(l_helper_fn);
    image.nop();
    image.ret();

    // ---- Data area (syscall table) at 0x480000 ----------------------------
    image.padTo(imageBase_ + kKernelDataOffset);
    image.padTo(imageBase_ + kImageBytes);

    std::vector<u8> bytes = image.finish();
    assert(bytes.size() == kImageBytes);
    machine_.physMem().writeBlock(imagePa_, bytes);

    // Zero the syscall table (padTo filled it with nop bytes).
    for (u64 off = 0; off < kPageBytes; off += 8)
        machine_.physMem().write64(imagePa_ + kKernelDataOffset + off, 0);
}

void
Kernel::mapImage()
{
    for (u64 off = 0; off < kImageBytes; off += kPageBytes) {
        mem::PageFlags flags;
        flags.present = true;
        flags.user = false;
        bool is_data = off >= kKernelDataOffset;
        flags.writable = is_data;
        flags.executable = !is_data;
        pageTable_.map4k(imageBase_ + off, imagePa_ + off, flags);
    }
}

void
Kernel::mapPhysmap()
{
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = true;
    flags.user = false;
    flags.executable = false;    // the paper: physmap is non-executable
    u64 installed = machine_.physMem().installedBytes();
    for (u64 pa = 0; pa < installed; pa += kHugePageBytes)
        pageTable_.map2m(physmapBase_ + pa, pa, flags);
}

VAddr
Kernel::loadModule(const std::vector<u8>& code, u64 syscall_nr)
{
    VAddr base = moduleNext_;
    u64 size = alignUp(code.size(), kPageBytes);
    PAddr pa = allocFrames(size);
    machine_.physMem().writeBlock(pa, code);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = false;
    flags.user = false;
    flags.executable = true;
    for (u64 off = 0; off < size; off += kPageBytes)
        pageTable_.map4k(base + off, pa + off, flags);
    moduleNext_ += size + kPageBytes;    // guard page between modules
    if (syscall_nr != 0)
        registerSyscall(syscall_nr, base);
    return base;
}

void
Kernel::registerSyscall(u64 syscall_nr, VAddr handler_va)
{
    assert(syscall_nr >= kSysModuleBase || handler_va == 0);
    machine_.physMem().write64(
        imagePa_ + kKernelDataOffset + syscall_nr * 8, handler_va);
}

void
Kernel::mapKernelCode(VAddr va, const std::vector<u8>& code)
{
    assert(va % kPageBytes == 0);
    u64 size = alignUp(code.size(), kPageBytes);
    PAddr pa = allocFrames(size);
    machine_.physMem().writeBlock(pa, code);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = false;
    flags.user = false;
    flags.executable = true;
    for (u64 off = 0; off < size; off += kPageBytes)
        pageTable_.map4k(va + off, pa + off, flags);
}

PAddr
Kernel::mapKernelData(VAddr va, u64 bytes)
{
    assert(va % kPageBytes == 0);
    u64 size = alignUp(bytes, kPageBytes);
    PAddr pa = allocFrames(size);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = true;
    flags.user = false;
    flags.executable = false;
    for (u64 off = 0; off < size; off += kPageBytes)
        pageTable_.map4k(va + off, pa + off, flags);
    return pa;
}

} // namespace phantom::os
