#include "os/kernel.hpp"

#include "isa/assembler.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace phantom::os {

using namespace isa;

Kernel::Kernel(cpu::Machine& machine, const KernelConfig& config)
    : machine_(machine), rng_(config.seed)
{
    u64 image_slot = config.randomizeImage ? rng_.below(kImageSlots) : 0;
    imageBase_ = kImageRegionBase + image_slot * kImageSlotStride;

    u64 installed = machine_.physMem().installedBytes();
    // The physmap must not overlap the image region; slots are plentiful.
    u64 physmap_slot =
        config.randomizePhysmap ? rng_.below(kPhysmapSlots) : 0;
    physmapBase_ = kPhysmapRegionBase + physmap_slot * kPhysmapSlotStride;
    (void)installed;

    moduleNext_ = kModuleRegionBase +
                  rng_.below(kModuleSlots) * kModuleSlotStride;

    imagePa_ = allocFrames(kImageBytes, kHugePageBytes);

    buildImage();
    mapImage();
    mapPhysmap();

    machine_.setPageTable(&pageTable_);
    machine_.setSyscallEntry(syscallEntry());
}

PAddr
Kernel::allocFrames(u64 bytes, u64 alignment)
{
    bumpPa_ = alignUp(bumpPa_, alignment);
    PAddr pa = bumpPa_;
    bumpPa_ += alignUp(bytes, kPageBytes);
    if (bumpPa_ > machine_.physMem().installedBytes())
        throw std::runtime_error("Kernel::allocFrames: out of physical memory");
    return pa;
}

PAddr
Kernel::allocFramesRandom(u64 bytes, u64 alignment)
{
    u64 installed = machine_.physMem().installedBytes();
    u64 span = alignUp(bytes, kPageBytes);
    // Keep a safety region above the bump allocator so deterministic
    // allocations never collide with randomized ones.
    u64 lo = alignUp(bumpPa_ + (512ull << 20), alignment);
    if (lo + span >= installed)
        return allocFrames(bytes, alignment);
    u64 slots = (installed - span - lo) / alignment;
    return lo + rng_.below(slots + 1) * alignment;
}

namespace {

/**
 * Assemble the kernel image for a hypothetical load address
 * @p image_base. The bytes are position-independent except for one
 * imm64 — the syscall-table address baked into the dispatcher — so the
 * result can serve as a shared template for every KASLR slot (the
 * template holder patches that field per boot). @p fdget_call_off
 * receives the image-relative offset of the Listing-2 victim call.
 */
std::vector<u8>
assembleImage(VAddr image_base, u64* fdget_call_off)
{
    Assembler image(image_base);

    // ---- Syscall entry / dispatcher at image offset 0 -------------------
    Label l_getpid = image.newLabel();
    Label l_readv = image.newLabel();
    Label l_out = image.newLabel();
    Label l_getpid_fn = image.newLabel();
    Label l_fdgetpos_fn = image.newLabel();
    Label l_helper_fn = image.newLabel();

    image.cmpImm(RAX, static_cast<i32>(kSysGetpid));
    image.jcc(Cond::Eq, l_getpid);
    image.cmpImm(RAX, static_cast<i32>(kSysReadv));
    image.jcc(Cond::Eq, l_readv);
    // Module dispatch: handler = *(syscall_table + rax * 8).
    image.movReg(R11, RAX);
    image.shl(R11, 3);
    image.movImm(R10, image_base + kKernelDataOffset);
    image.add(R11, R10);
    image.load(R11, R11, 0);
    image.cmpImm(R11, 0);
    image.jcc(Cond::Eq, l_out);
    image.callInd(R11);
    image.jmp(l_out);

    image.bind(l_getpid);
    image.call(l_getpid_fn);
    image.jmp(l_out);

    image.bind(l_readv);
    // The paper's tooling found that RSI (2nd syscall arg) reaches R12
    // by the time __fdget_pos is entered (§7.2).
    image.movReg(R12, RSI);
    image.call(l_fdgetpos_fn);
    image.jmp(l_out);

    image.bind(l_out);
    image.sysret();

    // ---- __task_pid_nr_ns-style function (Listing 1) at 0xf6520 ---------
    image.padTo(image_base + kGetpidGadgetOffset);
    image.bind(l_getpid_fn);
    image.nopN(5);                       // <- the PHANTOM victim nop
    image.push(RBP);
    image.movReg(RBP, RSP);
    image.movImm(RAX, 42);               // the "pid"
    image.pop(RBP);
    image.ret();

    // ---- Disclosure gadget (Listing 3) at 0x41da52 -----------------------
    image.padTo(image_base + kDisclosureGadgetOffset);
    image.load(R12, R12, kDisclosureDisp);   // mov r12, [r12+0xbe0]
    image.ret();

    // ---- __fdget_pos-style function (Listing 2) at 0x41db60 --------------
    image.padTo(image_base + kFdgetPosOffset);
    image.bind(l_fdgetpos_fn);
    image.nopN(5);
    image.push(RBP);
    image.movImm(RSI, 0x4000);
    image.movReg(RBP, RSP);
    image.subImm(RSP, 8);
    *fdget_call_off = image.here() - image_base; // <- the PHANTOM victim call
    image.call(l_helper_fn);
    image.addImm(RSP, 8);
    image.pop(RBP);
    image.ret();

    image.bind(l_helper_fn);
    image.nop();
    image.ret();

    // ---- Data area (syscall table) at 0x480000 ----------------------------
    image.padTo(image_base + kKernelDataOffset);
    image.padTo(image_base + kImageBytes);

    std::vector<u8> bytes = image.finish();
    assert(bytes.size() == kImageBytes);

    // Zero the syscall table (padTo filled it with nop bytes).
    std::fill(bytes.begin() + kKernelDataOffset,
              bytes.begin() + kKernelDataOffset + kPageBytes, u8{0});
    return bytes;
}

/**
 * The assembled kernel image, built once per process and shared
 * copy-on-write by every booted kernel. KASLR only moves the image;
 * the bytes are identical across slots except the dispatcher's
 * syscall-table imm64, whose offset is located here by diffing two
 * assemblies and re-patched per boot (see Kernel::buildImage).
 */
struct ImageTemplate
{
    /** Image frames keyed by frame index relative to the load PA. */
    mem::PhysicalMemory::FrameMap frames;
    u64 tableFieldOff = 0;    ///< offset of the syscall-table imm64
    VAddr builtTableVa = 0;   ///< table VA the template encodes
    u64 fdgetCallOff = 0;     ///< offset of the Listing-2 victim call
};

u64
readLe64(const std::vector<u8>& bytes, u64 off)
{
    u64 v = 0;
    for (int i = 7; i >= 0; --i)
        v = (v << 8) | bytes[off + static_cast<u64>(i)];
    return v;
}

const ImageTemplate&
imageTemplate()
{
    static const ImageTemplate tpl = [] {
        ImageTemplate t;
        VAddr base_a = kImageRegionBase;
        VAddr base_b = kImageRegionBase + kImageSlotStride;
        u64 call_off_b = 0;
        std::vector<u8> a = assembleImage(base_a, &t.fdgetCallOff);
        std::vector<u8> b = assembleImage(base_b, &call_off_b);
        assert(a.size() == b.size() && t.fdgetCallOff == call_off_b);

        // Locate the one imm64 that moves with the load address: the
        // 8-byte little-endian window holding each base's table VA and
        // covering every differing byte.
        u64 first_diff = a.size();
        for (u64 i = 0; i < a.size(); ++i)
            if (a[i] != b[i]) { first_diff = i; break; }
        assert(first_diff < a.size() && "image has no relocated field");
        u64 field = first_diff >= 7 ? first_diff - 7 : 0;
        while (field <= first_diff &&
               !(readLe64(a, field) == base_a + kKernelDataOffset &&
                 readLe64(b, field) == base_b + kKernelDataOffset))
            ++field;
        assert(field <= first_diff && "syscall-table imm64 not found");
        for (u64 i = 0; i < a.size(); ++i)
            assert((a[i] == b[i] || (i >= field && i < field + 8)) &&
                   "image differs outside the syscall-table imm64");
        t.tableFieldOff = field;
        t.builtTableVa = base_a + kKernelDataOffset;

        for (u64 off = 0; off < a.size(); off += kPageBytes) {
            auto frame = std::make_shared<mem::PhysicalMemory::Frame>();
            std::memcpy(frame->data(), a.data() + off, kPageBytes);
            t.frames.emplace(off / kPageBytes, std::move(frame));
        }
        return t;
    }();
    return tpl;
}

} // namespace

void
Kernel::buildImage()
{
    // Stamp the shared template into this machine — O(pages) pointer
    // copies — then patch the dispatcher's syscall-table address for
    // this boot's KASLR slot (clones exactly the page it lands in).
    const ImageTemplate& tpl = imageTemplate();
    machine_.physMem().installSharedFrames(imagePa_, tpl.frames);
    fdgetPosCallVa_ = imageBase_ + tpl.fdgetCallOff;
    if (syscallTableVa() != tpl.builtTableVa)
        machine_.physMem().write64(imagePa_ + tpl.tableFieldOff,
                                   syscallTableVa());
    assert(machine_.physMem().read64(imagePa_ + tpl.tableFieldOff) ==
           syscallTableVa());
}

void
Kernel::mapImage()
{
    for (u64 off = 0; off < kImageBytes; off += kPageBytes) {
        mem::PageFlags flags;
        flags.present = true;
        flags.user = false;
        bool is_data = off >= kKernelDataOffset;
        flags.writable = is_data;
        flags.executable = !is_data;
        pageTable_.map4k(imageBase_ + off, imagePa_ + off, flags);
    }
}

void
Kernel::mapPhysmap()
{
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = true;
    flags.user = false;
    flags.executable = false;    // the paper: physmap is non-executable
    u64 installed = machine_.physMem().installedBytes();
    for (u64 pa = 0; pa < installed; pa += kHugePageBytes)
        pageTable_.map2m(physmapBase_ + pa, pa, flags);
}

VAddr
Kernel::loadModule(const std::vector<u8>& code, u64 syscall_nr)
{
    VAddr base = moduleNext_;
    u64 size = alignUp(code.size(), kPageBytes);
    PAddr pa = allocFrames(size);
    machine_.physMem().writeBlock(pa, code);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = false;
    flags.user = false;
    flags.executable = true;
    for (u64 off = 0; off < size; off += kPageBytes)
        pageTable_.map4k(base + off, pa + off, flags);
    moduleNext_ += size + kPageBytes;    // guard page between modules
    if (syscall_nr != 0)
        registerSyscall(syscall_nr, base);
    return base;
}

void
Kernel::registerSyscall(u64 syscall_nr, VAddr handler_va)
{
    assert(syscall_nr >= kSysModuleBase || handler_va == 0);
    machine_.physMem().write64(
        imagePa_ + kKernelDataOffset + syscall_nr * 8, handler_va);
}

void
Kernel::mapKernelCode(VAddr va, const std::vector<u8>& code)
{
    assert(va % kPageBytes == 0);
    u64 size = alignUp(code.size(), kPageBytes);
    PAddr pa = allocFrames(size);
    machine_.physMem().writeBlock(pa, code);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = false;
    flags.user = false;
    flags.executable = true;
    for (u64 off = 0; off < size; off += kPageBytes)
        pageTable_.map4k(va + off, pa + off, flags);
}

PAddr
Kernel::mapKernelData(VAddr va, u64 bytes)
{
    assert(va % kPageBytes == 0);
    u64 size = alignUp(bytes, kPageBytes);
    PAddr pa = allocFrames(size);
    mem::PageFlags flags;
    flags.present = true;
    flags.writable = true;
    flags.user = false;
    flags.executable = false;
    for (u64 off = 0; off < size; off += kPageBytes)
        pageTable_.map4k(va + off, pa + off, flags);
    return pa;
}

} // namespace phantom::os
