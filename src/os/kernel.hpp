/**
 * @file
 * The victim operating system model.
 *
 * Builds a Linux-like kernel in the simulated machine: a KASLR-randomized
 * kernel image containing a syscall dispatcher and the exact gadget
 * layouts the paper exploits (Listings 1-3), a KASLR-randomized physmap
 * (direct map of all physical memory, non-executable), and a loadable
 * module region. Runs with a single shared page table (no KPTI — the
 * default on AMD parts, which are not Meltdown-affected; this is the
 * configuration the paper attacks).
 */

#ifndef PHANTOM_OS_KERNEL_HPP
#define PHANTOM_OS_KERNEL_HPP

#include "cpu/machine.hpp"
#include "os/layout.hpp"
#include "sim/rng.hpp"

#include <string>
#include <vector>

namespace phantom::os {

/** Kernel construction options. */
struct KernelConfig
{
    u64 seed = 1;              ///< KASLR randomness ("reboot" = new seed)
    bool randomizeImage = true;
    bool randomizePhysmap = true;
};

/**
 * One booted kernel instance. Owns the system page table and the
 * physical allocator; installs itself into the machine (page table and
 * syscall entry point).
 */
class Kernel
{
  public:
    Kernel(cpu::Machine& machine, const KernelConfig& config = {});

    // -- Layout ----------------------------------------------------------

    VAddr imageBase() const { return imageBase_; }
    VAddr physmapBase() const { return physmapBase_; }
    VAddr syscallEntry() const { return imageBase_; }

    /** Physmap alias of physical address @p pa. */
    VAddr physmapVaOf(PAddr pa) const { return physmapBase_ + pa; }

    /** VA of the Listing-1 victim nop inside the getpid path. */
    VAddr getpidGadgetVa() const { return imageBase_ + kGetpidGadgetOffset; }

    /** VA of the Listing-2 victim call inside __fdget_pos (readv path). */
    VAddr fdgetPosCallVa() const { return fdgetPosCallVa_; }

    /** VA of the Listing-3 disclosure gadget (mov r12, [r12+0xbe0]). */
    VAddr disclosureGadgetVa() const
    {
        return imageBase_ + kDisclosureGadgetOffset;
    }

    /** VA of the in-kernel syscall function-pointer table. */
    VAddr syscallTableVa() const { return imageBase_ + kKernelDataOffset; }

    // -- System services ---------------------------------------------------

    mem::PageTable& pageTable() { return pageTable_; }

    /** Allocate @p bytes of physical memory (4 KiB granularity). */
    PAddr allocFrames(u64 bytes, u64 alignment = kPageBytes);

    /**
     * Allocate @p bytes at a uniformly random aligned physical address
     * above the bump region — models a long-running buddy allocator
     * handing out frames from anywhere in installed memory (this is why
     * the Table-5 scan time grows with memory size).
     */
    PAddr allocFramesRandom(u64 bytes, u64 alignment = kPageBytes);

    /**
     * Load a kernel module: map @p code RX at a randomized module-region
     * address and optionally register it as syscall @p syscall_nr.
     * @return the module's base VA.
     */
    VAddr loadModule(const std::vector<u8>& code, u64 syscall_nr = 0);

    /** Register @p handler_va as the handler for @p syscall_nr. */
    void registerSyscall(u64 syscall_nr, VAddr handler_va);

    /** Map a kernel RX test page at @p va backed by fresh frames (used by
     *  experiments that need an arbitrary executable kernel address). */
    void mapKernelCode(VAddr va, const std::vector<u8>& code);

    /** Map a kernel RW/NX data page at @p va. */
    PAddr mapKernelData(VAddr va, u64 bytes);

    // -- Snapshot support --------------------------------------------------

    /** Kernel/process layout scalars captured into snapshots. */
    struct LayoutState
    {
        VAddr imageBase = 0;
        VAddr physmapBase = 0;
        VAddr fdgetPosCallVa = 0;
        VAddr moduleNext = 0;
        PAddr imagePa = 0;
        PAddr bumpPa = 0;
        u64 rngState[Rng::kStateWords] = {};
    };

    LayoutState
    layoutState() const
    {
        LayoutState s;
        s.imageBase = imageBase_;
        s.physmapBase = physmapBase_;
        s.fdgetPosCallVa = fdgetPosCallVa_;
        s.moduleNext = moduleNext_;
        s.imagePa = imagePa_;
        s.bumpPa = bumpPa_;
        rng_.stateWords(s.rngState);
        return s;
    }

    void
    setLayoutState(const LayoutState& s)
    {
        imageBase_ = s.imageBase;
        physmapBase_ = s.physmapBase;
        fdgetPosCallVa_ = s.fdgetPosCallVa;
        moduleNext_ = s.moduleNext;
        imagePa_ = s.imagePa;
        bumpPa_ = s.bumpPa;
        rng_.setStateWords(s.rngState);
    }

  private:
    void buildImage();
    void mapImage();
    void mapPhysmap();

    cpu::Machine& machine_;
    Rng rng_;
    mem::PageTable pageTable_;

    VAddr imageBase_ = 0;
    VAddr physmapBase_ = 0;
    VAddr fdgetPosCallVa_ = 0;
    VAddr moduleNext_ = 0;
    PAddr imagePa_ = 0;
    PAddr bumpPa_ = 16ull * 1024 * 1024;    // leave low memory alone
};

} // namespace phantom::os

#endif // PHANTOM_OS_KERNEL_HPP
