/**
 * @file
 * Virtual memory layout constants of the simulated Linux-like kernel.
 *
 * KASLR entropy matches the figures the paper uses: 488 possible kernel
 * image locations and 25,600 possible physmap locations [Koschel et al.,
 * cited as [38] in the paper].
 */

#ifndef PHANTOM_OS_LAYOUT_HPP
#define PHANTOM_OS_LAYOUT_HPP

#include "sim/types.hpp"

namespace phantom::os {

/** Base of the kernel image KASLR region (x86-64 Linux kernel text). */
inline constexpr VAddr kImageRegionBase = 0xffffffff80000000ull;

/** Kernel image slot stride (2 MiB, matching Linux). */
inline constexpr u64 kImageSlotStride = kHugePageBytes;

/** Number of possible kernel image locations. */
inline constexpr u64 kImageSlots = 488;

/** Base of the physmap (direct map) KASLR region. */
inline constexpr VAddr kPhysmapRegionBase = 0xffff888000000000ull;

/** Physmap slot stride. */
inline constexpr u64 kPhysmapSlotStride = kHugePageBytes;

/** Number of possible physmap locations. */
inline constexpr u64 kPhysmapSlots = 25600;

/** Base of the kernel module region. */
inline constexpr VAddr kModuleRegionBase = 0xffffffffa0000000ull;

/** Module slot stride (4 KiB granule like Linux module KASLR). */
inline constexpr u64 kModuleSlotStride = kPageBytes;

/** Number of possible module base offsets. */
inline constexpr u64 kModuleSlots = 65536;

/** Size of the assembled kernel image. */
inline constexpr u64 kImageBytes = 0x4a0000;

/** Image offset of the __task_pid_nr_ns-style gadget (paper Listing 1). */
inline constexpr u64 kGetpidGadgetOffset = 0xf6520;

/** Image offset of the __fdget_pos-style function (paper Listing 2). */
inline constexpr u64 kFdgetPosOffset = 0x41db60;

/** Image offset of the physmap disclosure gadget (paper Listing 3). */
inline constexpr u64 kDisclosureGadgetOffset = 0x41da52;

/** Displacement used by the disclosure gadget: mov r12, [r12 + 0xbe0]. */
inline constexpr i32 kDisclosureDisp = 0xbe0;

/** Image offset of the kernel data area (syscall table etc.), RW/NX. */
inline constexpr u64 kKernelDataOffset = 0x480000;

/** Default user-mode code base for attacker processes. */
inline constexpr VAddr kUserCodeBase = 0x0000000000400000ull;

/** Default user-mode stack top. */
inline constexpr VAddr kUserStackTop = 0x00007ffffffde000ull;

/** Syscall numbers implemented by the kernel. */
enum Syscall : u64 {
    kSysGetpid = 0,
    kSysReadv = 1,
    kSysModuleBase = 2,   ///< modules register entries from here upward
};

} // namespace phantom::os

#endif // PHANTOM_OS_LAYOUT_HPP
