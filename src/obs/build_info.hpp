/**
 * @file
 * Build identity, shared by every manifest-like surface.
 *
 * CMake computes `git describe --always --dirty` at configure time and
 * bakes it into every target as the PHANTOM_GIT_DESCRIBE compile
 * definition. This header is the one accessor: bench manifests
 * (bench/bench_util.hpp) and the daemon's /healthz document both report
 * the same string, so version skew between a stored baseline and a
 * running service is always detectable.
 */

#ifndef PHANTOM_OBS_BUILD_INFO_HPP
#define PHANTOM_OBS_BUILD_INFO_HPP

namespace phantom::obs {

/** The configure-time `git describe` string, or "unknown". */
inline const char*
gitDescribe()
{
#ifdef PHANTOM_GIT_DESCRIBE
    return PHANTOM_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

} // namespace phantom::obs

#endif // PHANTOM_OBS_BUILD_INFO_HPP
