#include "obs/timeline.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace phantom::obs {

namespace {

u64
monotonicNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace

const char*
requestStageName(RequestStage stage)
{
    switch (stage) {
      case RequestStage::Accepted:    return "accepted";
      case RequestStage::HeadParsed:  return "head_parsed";
      case RequestStage::Validated:   return "validated";
      case RequestStage::Enqueued:    return "enqueued";
      case RequestStage::Dequeued:    return "dequeued";
      case RequestStage::TrainOrFork: return "train_or_fork";
      case RequestStage::Executed:    return "executed";
      case RequestStage::Serialized:  return "serialized";
      case RequestStage::Written:     return "written";
      default:                        return "?";
    }
}

RequestTimeline::RequestTimeline(u64 id)
    : id_(id)
{
    mark(RequestStage::Accepted);
}

void
RequestTimeline::mark(RequestStage stage)
{
    markAt(stage, monotonicNs());
}

void
RequestTimeline::markAt(RequestStage stage, u64 ns)
{
    // Clamp against the latest mark so stage timestamps are monotone
    // by construction, even when marks come from different threads
    // whose steady_clock reads interleave oddly.
    u64 stamped = std::max(ns, lastNs_);
    // A mark is never 0: 0 encodes "unmarked".
    if (stamped == 0)
        stamped = 1;
    ns_[static_cast<std::size_t>(stage)] = stamped;
    lastNs_ = stamped;
}

bool
RequestTimeline::marked(RequestStage stage) const
{
    return ns_[static_cast<std::size_t>(stage)] != 0;
}

u64
RequestTimeline::ns(RequestStage stage) const
{
    return ns_[static_cast<std::size_t>(stage)];
}

u64
RequestTimeline::sinceAcceptMicros(RequestStage stage) const
{
    u64 start = ns_[static_cast<std::size_t>(RequestStage::Accepted)];
    u64 at = ns_[static_cast<std::size_t>(stage)];
    if (start == 0 || at <= start)
        return 0;
    return (at - start) / 1000;
}

u64
RequestTimeline::elapsedMicros() const
{
    u64 start = ns_[static_cast<std::size_t>(RequestStage::Accepted)];
    u64 now = monotonicNs();
    if (start == 0 || now <= start)
        return 0;
    return (now - start) / 1000;
}

std::array<u64, kRequestStages>
RequestTimeline::stageMicros() const
{
    std::array<u64, kRequestStages> micros{};
    u64 previous = 0;
    for (std::size_t i = 0; i < kRequestStages; ++i) {
        if (ns_[i] == 0)
            continue;
        u64 cumulative = sinceAcceptMicros(static_cast<RequestStage>(i));
        micros[i] = cumulative >= previous ? cumulative - previous : 0;
        previous = std::max(previous, cumulative);
    }
    return micros;
}

u64
RequestTimeline::totalMicros() const
{
    // The running maximum of the cumulative offsets — exactly what the
    // stageMicros() entries telescope to, so sum == total always holds.
    u64 total = 0;
    for (std::size_t i = 0; i < kRequestStages; ++i)
        if (ns_[i] != 0)
            total = std::max(
                total, sinceAcceptMicros(static_cast<RequestStage>(i)));
    return total;
}

TimelineRing::TimelineRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

void
TimelineRing::push(TimelineRecord record)
{
    records_.push_back(std::move(record));
    ++pushed_;
    while (records_.size() > capacity_) {
        records_.pop_front();
        ++evicted_;
    }
}

std::vector<TimelineRecord>
TimelineRing::snapshot() const
{
    return std::vector<TimelineRecord>(records_.begin(), records_.end());
}

} // namespace phantom::obs
