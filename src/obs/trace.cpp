#include "obs/trace.hpp"

namespace phantom::obs {

const char*
traceEventName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::BtbLookup:       return "btb_lookup";
      case TraceEventKind::BtbInstall:      return "btb_install";
      case TraceEventKind::SpecFetch:       return "spec_fetch";
      case TraceEventKind::SpecDecode:      return "spec_decode";
      case TraceEventKind::SpecExec:        return "spec_exec";
      case TraceEventKind::FrontendResteer: return "frontend_resteer";
      case TraceEventKind::BackendResteer:  return "backend_resteer";
      case TraceEventKind::Squash:          return "squash";
      case TraceEventKind::OpCacheFill:     return "op_cache_fill";
      case TraceEventKind::OpCacheHit:      return "op_cache_hit";
      case TraceEventKind::EpisodeBegin:    return "episode_begin";
      case TraceEventKind::EpisodeEnd:      return "episode_end";
      case TraceEventKind::kCount:          break;
    }
    return "?";
}

namespace {

std::size_t
roundUpPow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

thread_local TraceSink* tActiveSink = nullptr;

} // namespace

RingTraceSink::RingTraceSink(std::size_t capacity)
    : ring_(roundUpPow2(capacity == 0 ? 1 : capacity)),
      mask_(ring_.size() - 1)
{
}

std::vector<TraceEvent>
RingTraceSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(static_cast<std::size_t>(head_ - tail_));
    for (u64 i = tail_; i < head_; ++i)
        out.push_back(ring_[i & mask_]);
    return out;
}

void
RingTraceSink::clear()
{
    head_ = 0;
    tail_ = 0;
    dropped_ = 0;
}

TraceSink*
activeTraceSink()
{
    return tActiveSink;
}

void
setActiveTraceSink(TraceSink* sink)
{
    tActiveSink = sink;
}

} // namespace phantom::obs
