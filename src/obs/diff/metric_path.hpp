/**
 * @file
 * Metric-path registry for phantom-bench-results documents.
 *
 * A results file is a tree; the diff layer works on its flattened form:
 * a sorted list of (dotted path, leaf) pairs. Every leaf is classified
 * into one of three comparison classes:
 *
 *  - Deterministic: derived only from seeded simulation (the
 *    "experiments" subtree, metrics.deterministic, the manifest).
 *    Baseline comparisons must be bit-identical; any difference is a
 *    model change and fails the regression gate.
 *  - Measured: wall-clock derived but stable enough on one host to
 *    bound (timing, the trial_micros histogram). Compared with a
 *    relative tolerance / histogram-distance test.
 *  - Informational: run provenance and scheduling detail that
 *    legitimately varies (git_describe, jobs, steals, trace event
 *    counts — including trace.events_dropped, which is explicitly
 *    excluded from deterministic comparison). Reported, never gated.
 */

#ifndef PHANTOM_OBS_DIFF_METRIC_PATH_HPP
#define PHANTOM_OBS_DIFF_METRIC_PATH_HPP

#include "runner/json.hpp"

#include <string>
#include <vector>

namespace phantom::obs::diff {

enum class MetricClass {
    Deterministic,
    Measured,
    Informational,
};

const char* metricClassName(MetricClass cls);

/** Shape of a flattened leaf. */
enum class LeafKind {
    Scalar,      ///< number or bool
    Text,        ///< string
    Histogram,   ///< {count, sum, mean, buckets:[{lo, count}...]}
    List,        ///< any other array (samples, uarch list)
};

/** One flattened metric: a dotted path and the node it points at. */
struct MetricLeaf
{
    std::string path;
    LeafKind kind = LeafKind::Scalar;
    const runner::JsonValue* node = nullptr;
};

/**
 * Flatten @p doc into (path, leaf) pairs, sorted by path. Objects
 * recurse; a histogram-shaped object (count + buckets members) is kept
 * whole as one Histogram leaf so the distance test sees the full
 * distribution; arrays are kept whole as List leaves.
 */
std::vector<MetricLeaf> enumerateMetricPaths(const runner::JsonValue& doc);

/**
 * Comparison class of the leaf at @p path. Longest-matching prefix over
 * a fixed rule table; unknown paths default to Deterministic, so a new
 * metric can never silently bypass the gate.
 */
MetricClass classifyMetricPath(const std::string& path);

} // namespace phantom::obs::diff

#endif // PHANTOM_OBS_DIFF_METRIC_PATH_HPP
