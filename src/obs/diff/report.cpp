#include "obs/diff/report.hpp"

#include <algorithm>
#include <cstdio>

namespace phantom::obs::diff {

namespace {

/** Cap per-bench detail rows so a wholesale drift stays readable. */
constexpr std::size_t kMaxDetailRows = 64;

std::string
countCell(u64 n)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(n));
    return buf;
}

std::string
deltaCell(const MetricDiff& diff)
{
    if (diff.status == DiffStatus::WithinTolerance ||
        diff.status == DiffStatus::MeasuredRegression) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3f", diff.delta);
        return buf;
    }
    return "";
}

void
appendVerdictSection(const std::vector<BenchDiff>& diffs, Report& report)
{
    ReportSection section;
    section.title = "Verdict";

    ReportTable table;
    table.header = {"bench",   "compared", "drift", "regression",
                    "missing", "tolerated", "verdict"};
    for (const BenchDiff& diff : diffs) {
        table.rows.push_back({diff.bench,
                              countCell(diff.summary.compared),
                              countCell(diff.summary.drifts),
                              countCell(diff.summary.regressions),
                              countCell(diff.summary.missing),
                              countCell(diff.summary.withinTolerance),
                              diff.pass() ? "PASS" : "FAIL"});
        if (!diff.pass())
            report.pass = false;
    }
    table.note = "drift = deterministic metric changed (bit-exact "
                 "contract); regression = measured metric beyond "
                 "tolerance; missing = metric present on only one side.";
    section.tables.push_back(std::move(table));
    report.sections.push_back(std::move(section));
}

void
appendDetailSection(const BenchDiff& diff, Report& report)
{
    if (diff.entries.empty())
        return;

    ReportSection section;
    section.title = "Differences: " + diff.bench;

    // Failing entries first, then tolerated/info, path order within.
    std::vector<const MetricDiff*> ordered;
    ordered.reserve(diff.entries.size());
    for (const MetricDiff& entry : diff.entries)
        ordered.push_back(&entry);
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const MetricDiff* a, const MetricDiff* b) {
                         return a->failing() > b->failing();
                     });

    ReportTable table;
    table.header = {"metric path", "class",   "status",
                    "baseline",    "current", "delta"};
    for (const MetricDiff* entry : ordered) {
        if (table.rows.size() >= kMaxDetailRows) {
            table.note = "… " +
                         countCell(ordered.size() - table.rows.size()) +
                         " further entries truncated (all less severe).";
            break;
        }
        table.rows.push_back({entry->path, metricClassName(entry->cls),
                              diffStatusName(entry->status),
                              entry->baseline, entry->current,
                              deltaCell(*entry)});
    }
    section.tables.push_back(std::move(table));
    report.sections.push_back(std::move(section));
}

/** Millisecond cell with three decimals; "-" for an absent baseline. */
std::string
selfMsCell(double ms)
{
    if (ms < 0.0)
        return "-";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", ms);
    return buf;
}

void
appendProfileSection(const BenchDiff& diff, Report& report)
{
    if (diff.profileTop.empty())
        return;
    ReportSection section;
    section.title = "Top host phases: " + diff.bench;
    section.paragraphs.push_back(
        "Host wall-clock attribution from the PHANTOM_PROF self-profiler"
        " (estimated self time, current run's top phases). Informational"
        " — host timings never gate the comparison.");
    ReportTable table;
    table.header = {"phase", "entries", "baseline self ms",
                    "current self ms"};
    for (const ProfilePhaseRow& row : diff.profileTop)
        table.rows.push_back({row.phase, countCell(row.count),
                              selfMsCell(row.baselineSelfMs),
                              selfMsCell(row.currentSelfMs)});
    section.tables.push_back(std::move(table));
    report.sections.push_back(std::move(section));
}

void
appendPaperSection(const std::map<std::string, runner::JsonValue>& current,
                   Report& report)
{
    ReportSection section;
    section.title = "Paper conformance";
    section.paragraphs.push_back(
        "Measured values against the figures reported in \"Phantom: "
        "Exploiting Decoder-detectable Mispredictions\". Informational: "
        "the regression gate compares against the baseline store, not "
        "the paper.");

    for (const auto& [bench, doc] : current) {
        std::vector<PaperCheck> checks = paperConformance(bench, doc);
        if (checks.empty())
            continue;
        ReportTable table;
        table.title = bench;
        table.header = {"figure", "check", "paper", "measured", "ok"};
        for (const PaperCheck& check : checks)
            table.rows.push_back({check.figure, check.item,
                                  check.expected, check.actual,
                                  !check.applicable ? "n/a"
                                  : check.pass      ? "yes"
                                                    : "NO"});
        section.tables.push_back(std::move(table));
    }
    if (!section.tables.empty())
        report.sections.push_back(std::move(section));
}

std::string
escapeHtml(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          default:  out.push_back(c);
        }
    }
    return out;
}

std::string
escapeMarkdownCell(const std::string& text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        if (c == '|')
            out += "\\|";
        else
            out.push_back(c);
    }
    return out;
}

} // namespace

Report
buildReport(const std::vector<BenchDiff>& diffs,
            const std::map<std::string, runner::JsonValue>& current,
            const DiffOptions& options)
{
    Report report;
    report.title = "Phantom bench observatory report";

    if (!diffs.empty()) {
        appendVerdictSection(diffs, report);

        ReportSection config;
        config.title = "Comparison settings";
        char buf[128];
        std::snprintf(buf, sizeof buf,
                      "Measured tolerance: relative %.3g, histogram "
                      "distance %.3g.",
                      options.relTol, options.histTol);
        config.paragraphs.push_back(buf);
        report.sections.push_back(std::move(config));

        for (const BenchDiff& diff : diffs)
            appendDetailSection(diff, report);
        for (const BenchDiff& diff : diffs)
            appendProfileSection(diff, report);
    }
    appendPaperSection(current, report);
    return report;
}

std::string
renderMarkdown(const Report& report)
{
    std::string out = "# " + report.title + "\n\n";
    out += report.pass ? "**Verdict: PASS**\n\n" : "**Verdict: FAIL**\n\n";
    for (const ReportSection& section : report.sections) {
        out += "## " + section.title + "\n\n";
        for (const std::string& paragraph : section.paragraphs)
            out += paragraph + "\n\n";
        for (const ReportTable& table : section.tables) {
            if (!table.title.empty())
                out += "### " + table.title + "\n\n";
            out += "|";
            for (const std::string& cell : table.header)
                out += " " + escapeMarkdownCell(cell) + " |";
            out += "\n|";
            for (std::size_t i = 0; i < table.header.size(); ++i)
                out += "---|";
            out += "\n";
            for (const auto& row : table.rows) {
                out += "|";
                for (const std::string& cell : row)
                    out += " " + escapeMarkdownCell(cell) + " |";
                out += "\n";
            }
            out += "\n";
            if (!table.note.empty())
                out += table.note + "\n\n";
        }
    }
    return out;
}

std::string
renderHtml(const Report& report)
{
    std::string out =
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>" +
        escapeHtml(report.title) +
        "</title>\n<style>\n"
        "body { font-family: sans-serif; margin: 2em; }\n"
        "table { border-collapse: collapse; margin: 1em 0; }\n"
        "th, td { border: 1px solid #999; padding: 0.3em 0.6em; "
        "font-size: 0.9em; }\n"
        "th { background: #eee; }\n"
        ".fail { color: #b00020; font-weight: bold; }\n"
        ".pass { color: #2e7d32; font-weight: bold; }\n"
        "</style></head><body>\n";
    out += "<h1>" + escapeHtml(report.title) + "</h1>\n";
    out += std::string("<p class=\"") + (report.pass ? "pass" : "fail") +
           "\">Verdict: " + (report.pass ? "PASS" : "FAIL") + "</p>\n";
    for (const ReportSection& section : report.sections) {
        out += "<h2>" + escapeHtml(section.title) + "</h2>\n";
        for (const std::string& paragraph : section.paragraphs)
            out += "<p>" + escapeHtml(paragraph) + "</p>\n";
        for (const ReportTable& table : section.tables) {
            if (!table.title.empty())
                out += "<h3>" + escapeHtml(table.title) + "</h3>\n";
            out += "<table>\n<tr>";
            for (const std::string& cell : table.header)
                out += "<th>" + escapeHtml(cell) + "</th>";
            out += "</tr>\n";
            for (const auto& row : table.rows) {
                out += "<tr>";
                for (const std::string& cell : row)
                    out += "<td>" + escapeHtml(cell) + "</td>";
                out += "</tr>\n";
            }
            out += "</table>\n";
            if (!table.note.empty())
                out += "<p>" + escapeHtml(table.note) + "</p>\n";
        }
    }
    out += "</body></html>\n";
    return out;
}

} // namespace phantom::obs::diff
