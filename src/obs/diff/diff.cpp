#include "obs/diff/diff.hpp"

#include "obs/prof.hpp"
#include "runner/prof_json.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

namespace phantom::obs::diff {

using runner::JsonValue;

namespace {

double
envDouble(const char* name, double fallback)
{
    const char* env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return fallback;
    char* end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(v >= 0.0)) {
        std::fprintf(stderr,
                     "phantom: ignoring malformed %s=\"%s\" (using %g)\n",
                     name, env, fallback);
        return fallback;
    }
    return v;
}

std::string
renderNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

double
relativeDelta(double a, double b)
{
    if (a == b)
        return 0.0;
    double scale = std::max(std::fabs(a), std::fabs(b));
    return scale == 0.0 ? 0.0 : std::fabs(a - b) / scale;
}

} // namespace

DiffOptions
DiffOptions::fromEnv()
{
    DiffOptions options;
    options.relTol = envDouble("PHANTOM_DIFF_RELTOL", options.relTol);
    options.histTol = envDouble("PHANTOM_DIFF_HISTTOL", options.histTol);
    return options;
}

const char*
diffStatusName(DiffStatus status)
{
    switch (status) {
      case DiffStatus::Match:              return "match";
      case DiffStatus::WithinTolerance:    return "within-tolerance";
      case DiffStatus::DeterministicDrift: return "DETERMINISTIC DRIFT";
      case DiffStatus::MeasuredRegression: return "MEASURED REGRESSION";
      case DiffStatus::MissingInBaseline:  return "MISSING IN BASELINE";
      case DiffStatus::MissingInCurrent:   return "MISSING IN CURRENT";
      case DiffStatus::Info:               return "info";
    }
    return "?";
}

bool
MetricDiff::failing() const
{
    switch (status) {
      case DiffStatus::DeterministicDrift:
      case DiffStatus::MeasuredRegression:
        return true;
      case DiffStatus::MissingInBaseline:
      case DiffStatus::MissingInCurrent:
        return cls != MetricClass::Informational;
      default:
        return false;
    }
}

std::string
renderLeaf(const MetricLeaf& leaf)
{
    const JsonValue& node = *leaf.node;
    switch (leaf.kind) {
      case LeafKind::Scalar:
        if (node.kind() == JsonValue::Kind::Bool)
            return node.boolean() ? "true" : "false";
        if (node.kind() == JsonValue::Kind::Number)
            return renderNumber(node.number());
        return "null";
      case LeafKind::Text:
        return node.string();
      case LeafKind::Histogram: {
        const JsonValue* count = node.find("count");
        const JsonValue* mean = node.find("mean");
        std::string out = "hist n=";
        out += count != nullptr ? renderNumber(count->number()) : "?";
        if (mean != nullptr)
            out += " mean=" + renderNumber(mean->number());
        return out;
      }
      case LeafKind::List: {
        char buf[32];
        std::snprintf(buf, sizeof buf, "[%zu items]",
                      node.items().size());
        return buf;
      }
    }
    return "?";
}

double
histogramDistance(const JsonValue& a, const JsonValue& b)
{
    // Bucket mass by inclusive lower bound; fixed log2 edges make the
    // union walk exact.
    auto massOf = [](const JsonValue& h, std::map<u64, double>& mass) {
        double total = 0.0;
        const JsonValue* buckets = h.find("buckets");
        if (buckets == nullptr || !buckets->isArray())
            return 0.0;
        for (const JsonValue& bucket : buckets->items()) {
            const JsonValue* lo = bucket.find("lo");
            const JsonValue* count = bucket.find("count");
            if (lo == nullptr || count == nullptr)
                continue;
            mass[static_cast<u64>(lo->number())] += count->number();
            total += count->number();
        }
        return total;
    };

    std::map<u64, double> pa;
    std::map<u64, double> pb;
    double na = massOf(a, pa);
    double nb = massOf(b, pb);
    if (na == 0.0 && nb == 0.0)
        return 0.0;
    if (na == 0.0 || nb == 0.0)
        return 1.0;

    double tv = 0.0;
    auto ia = pa.begin();
    auto ib = pb.begin();
    while (ia != pa.end() || ib != pb.end()) {
        double fa = 0.0;
        double fb = 0.0;
        if (ib == pb.end() || (ia != pa.end() && ia->first < ib->first)) {
            fa = ia->second / na;
            ++ia;
        } else if (ia == pa.end() || ib->first < ia->first) {
            fb = ib->second / nb;
            ++ib;
        } else {
            fa = ia->second / na;
            fb = ib->second / nb;
            ++ia;
            ++ib;
        }
        tv += std::fabs(fa - fb);
    }
    return 0.5 * tv;
}

namespace {

MetricDiff
compareLeaves(const MetricLeaf& base, const MetricLeaf& cur,
              const DiffOptions& options)
{
    MetricDiff diff;
    diff.path = base.path;
    diff.cls = classifyMetricPath(base.path);
    diff.baseline = renderLeaf(base);
    diff.current = renderLeaf(cur);

    bool equal = *base.node == *cur.node;
    if (equal) {
        diff.status = DiffStatus::Match;
        return diff;
    }
    if (diff.cls == MetricClass::Informational) {
        diff.status = DiffStatus::Info;
        return diff;
    }
    if (diff.cls == MetricClass::Deterministic) {
        diff.status = DiffStatus::DeterministicDrift;
        return diff;
    }

    // Measured: tolerance tests by shape. A shape mismatch (histogram
    // vs scalar, say) is never tolerable.
    if (base.kind != cur.kind) {
        diff.status = DiffStatus::MeasuredRegression;
        diff.delta = 1.0;
        return diff;
    }
    switch (base.kind) {
      case LeafKind::Scalar: {
        if (base.node->kind() != JsonValue::Kind::Number ||
            cur.node->kind() != JsonValue::Kind::Number) {
            diff.status = DiffStatus::MeasuredRegression;
            return diff;
        }
        diff.delta =
            relativeDelta(base.node->number(), cur.node->number());
        diff.status = diff.delta <= options.relTol
                          ? DiffStatus::WithinTolerance
                          : DiffStatus::MeasuredRegression;
        return diff;
      }
      case LeafKind::Histogram: {
        diff.delta = histogramDistance(*base.node, *cur.node);
        diff.status = diff.delta <= options.histTol
                          ? DiffStatus::WithinTolerance
                          : DiffStatus::MeasuredRegression;
        return diff;
      }
      case LeafKind::Text:
      case LeafKind::List:
        // No meaningful tolerance for measured text/lists.
        diff.status = DiffStatus::MeasuredRegression;
        diff.delta = 1.0;
        return diff;
    }
    return diff;
}

MetricDiff
oneSided(const MetricLeaf& leaf, bool in_baseline)
{
    MetricDiff diff;
    diff.path = leaf.path;
    diff.cls = classifyMetricPath(leaf.path);
    if (diff.cls == MetricClass::Informational)
        diff.status = DiffStatus::Info;
    else
        diff.status = in_baseline ? DiffStatus::MissingInCurrent
                                  : DiffStatus::MissingInBaseline;
    if (in_baseline) {
        diff.baseline = renderLeaf(leaf);
        diff.current = "-";
    } else {
        diff.baseline = "-";
        diff.current = renderLeaf(leaf);
    }
    return diff;
}

} // namespace

BenchDiff
diffResults(const std::string& bench, const JsonValue& baseline,
            const JsonValue& current, const DiffOptions& options)
{
    BenchDiff result;
    result.bench = bench;

    std::vector<MetricLeaf> base = enumerateMetricPaths(baseline);
    std::vector<MetricLeaf> cur = enumerateMetricPaths(current);

    auto record = [&result](MetricDiff diff) {
        ++result.summary.compared;
        switch (diff.status) {
          case DiffStatus::Match:
            ++result.summary.matches;
            return;   // counted, not stored
          case DiffStatus::WithinTolerance:
            ++result.summary.withinTolerance;
            break;
          case DiffStatus::DeterministicDrift:
            ++result.summary.drifts;
            break;
          case DiffStatus::MeasuredRegression:
            ++result.summary.regressions;
            break;
          case DiffStatus::MissingInBaseline:
          case DiffStatus::MissingInCurrent:
            ++result.summary.missing;
            break;
          case DiffStatus::Info:
            ++result.summary.info;
            break;
        }
        result.entries.push_back(std::move(diff));
    };

    // Both enumerations are path-sorted: a single merge walk pairs them
    // up and surfaces one-sided paths, independent of insertion order
    // on either side.
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < base.size() || j < cur.size()) {
        if (j == cur.size() ||
            (i < base.size() && base[i].path < cur[j].path)) {
            record(oneSided(base[i], /*in_baseline=*/true));
            ++i;
        } else if (i == base.size() || cur[j].path < base[i].path) {
            record(oneSided(cur[j], /*in_baseline=*/false));
            ++j;
        } else {
            record(compareLeaves(base[i], cur[j], options));
            ++i;
            ++j;
        }
    }

    // Host-profile attribution: when both runs were profiled
    // (PHANTOM_PROF=1), rank the current run's phases by estimated
    // self time and pair each with its baseline figure, so the report
    // can show where the host wall clock moved. Informational only —
    // host timings are not comparable the way model output is.
    const JsonValue* base_prof = runner::findProfile(baseline);
    const JsonValue* cur_prof = runner::findProfile(current);
    if (base_prof != nullptr && cur_prof != nullptr) {
        prof::Report base_report;
        prof::Report cur_report;
        std::string error;
        if (runner::profileFromJson(*base_prof, base_report, &error) &&
            runner::profileFromJson(*cur_prof, cur_report, &error)) {
            std::map<std::string, double> base_self;
            for (const prof::PhaseReport& phase : base_report.phases)
                base_self[prof::phaseName(phase.phase)] =
                    phase.estimatedSelfNs() / 1e6;
            for (const prof::PhaseReport& phase : cur_report.phases) {
                ProfilePhaseRow row;
                row.phase = prof::phaseName(phase.phase);
                row.count = phase.count;
                row.currentSelfMs = phase.estimatedSelfNs() / 1e6;
                auto it = base_self.find(row.phase);
                row.baselineSelfMs =
                    it != base_self.end() ? it->second : -1.0;
                result.profileTop.push_back(std::move(row));
            }
            std::sort(result.profileTop.begin(), result.profileTop.end(),
                      [](const ProfilePhaseRow& a,
                         const ProfilePhaseRow& b) {
                          return a.currentSelfMs > b.currentSelfMs;
                      });
            if (result.profileTop.size() > 8)
                result.profileTop.resize(8);
        }
    }
    return result;
}

} // namespace phantom::obs::diff
