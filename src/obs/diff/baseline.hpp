/**
 * @file
 * Baseline store: load/save checked-in reference results under
 * bench/baselines/ (or $PHANTOM_BASELINE_DIR) and match them against a
 * fresh results directory.
 *
 * A baseline file is a regular phantom-bench-results document, schema
 * "phantom-bench-results/v2", plus a "baseline_of" provenance object
 * recording which tree produced it:
 *
 *   "baseline_of": {
 *     "git_describe": "<manifest git_describe at capture time>",
 *     "source_schema": "phantom-bench-results/v2",
 *     "tool": "bench_report"
 *   }
 *
 * Readers accept v1 and v2 documents; `tools/bench_report
 * --update-baselines` rewrites the store.
 */

#ifndef PHANTOM_OBS_DIFF_BASELINE_HPP
#define PHANTOM_OBS_DIFF_BASELINE_HPP

#include "runner/json.hpp"

#include <map>
#include <string>

namespace phantom::obs::diff {

/** True for any accepted results schema marker (v1 or v2). */
bool isBenchResultsSchema(const std::string& marker);

/** $PHANTOM_BASELINE_DIR, or @p fallback when unset/empty. */
std::string baselineDirFromEnv(const std::string& fallback);

/**
 * Parse the results file at @p path. Fails (false + @p error) on
 * unreadable files, malformed JSON, or a missing/unknown schema marker.
 */
bool loadResultsFile(const std::string& path, runner::JsonValue& out,
                     std::string* error);

/**
 * Load every "*.json" bench-results document in @p dir, keyed by its
 * "bench" name (falling back to the file stem). Fails on the first
 * unreadable or malformed file — a corrupt baseline must break the
 * gate, not shrink the comparison set.
 */
bool loadResultsDir(const std::string& dir,
                    std::map<std::string, runner::JsonValue>& out,
                    std::string* error);

/**
 * Turn a results document into a baseline: stamp the v2 schema marker
 * and the "baseline_of" provenance block (taking git_describe from the
 * document's own manifest).
 */
runner::JsonValue toBaseline(const runner::JsonValue& results);

/** Serialize @p baseline to @p path (pretty-printed, trailing newline). */
bool writeBaselineFile(const std::string& path,
                       const runner::JsonValue& baseline,
                       std::string* error);

} // namespace phantom::obs::diff

#endif // PHANTOM_OBS_DIFF_BASELINE_HPP
