#include "obs/diff/baseline.hpp"

#include "runner/result_sink.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace phantom::obs::diff {

using runner::JsonValue;

bool
isBenchResultsSchema(const std::string& marker)
{
    return marker == runner::kResultSchemaV1 ||
           marker == runner::kResultSchemaV2;
}

std::string
baselineDirFromEnv(const std::string& fallback)
{
    const char* env = std::getenv("PHANTOM_BASELINE_DIR");
    return (env != nullptr && *env != '\0') ? env : fallback;
}

bool
loadResultsFile(const std::string& path, JsonValue& out,
                std::string* error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = path + ": cannot read";
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string parse_error;
    if (!runner::parseJson(buffer.str(), out, &parse_error)) {
        if (error != nullptr)
            *error = path + ": " + parse_error;
        return false;
    }
    const JsonValue* schema = out.find("schema");
    if (schema == nullptr ||
        schema->kind() != JsonValue::Kind::String ||
        !isBenchResultsSchema(schema->string())) {
        if (error != nullptr)
            *error = path + ": not a phantom-bench-results document";
        return false;
    }
    return true;
}

bool
loadResultsDir(const std::string& dir,
               std::map<std::string, JsonValue>& out, std::string* error)
{
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) {
        if (error != nullptr)
            *error = dir + ": " + ec.message();
        return false;
    }
    for (const auto& entry : it) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".json")
            continue;
        JsonValue doc;
        if (!loadResultsFile(entry.path().string(), doc, error))
            return false;
        const JsonValue* bench = doc.find("bench");
        std::string name = (bench != nullptr &&
                            bench->kind() == JsonValue::Kind::String)
                               ? bench->string()
                               : entry.path().stem().string();
        out[name] = std::move(doc);
    }
    return true;
}

JsonValue
toBaseline(const JsonValue& results)
{
    JsonValue baseline = results;
    const JsonValue* schema = results.find("schema");
    const JsonValue* describe =
        results.findPath("metrics.manifest.git_describe");

    JsonValue provenance = JsonValue::object();
    provenance.set("git_describe",
                   JsonValue(describe != nullptr &&
                                     describe->kind() ==
                                         JsonValue::Kind::String
                                 ? describe->string()
                                 : std::string("unknown")));
    provenance.set("source_schema",
                   JsonValue(schema != nullptr ? schema->string()
                                               : std::string("?")));
    provenance.set("tool", JsonValue("bench_report"));

    baseline.set("schema", JsonValue(runner::kResultSchemaV2));
    baseline.set("baseline_of", std::move(provenance));
    return baseline;
}

bool
writeBaselineFile(const std::string& path, const JsonValue& baseline,
                  std::string* error)
{
    std::ofstream out(path);
    if (!out) {
        if (error != nullptr)
            *error = path + ": cannot write";
        return false;
    }
    out << baseline.dump(2) << "\n";
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = path + ": short write";
        return false;
    }
    return true;
}

} // namespace phantom::obs::diff
