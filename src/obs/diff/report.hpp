/**
 * @file
 * Report model and renderers for baseline comparisons.
 *
 * The comparison result is built once into a medium-neutral Report
 * (sections of paragraphs and tables), then rendered to Markdown or to
 * a standalone HTML page. The report carries three layers:
 *
 *  1. a per-bench verdict table (drift / regression / missing counts),
 *  2. the failing and notable metric diffs per bench,
 *  3. paper-conformance tables (expected vs measured per figure).
 */

#ifndef PHANTOM_OBS_DIFF_REPORT_HPP
#define PHANTOM_OBS_DIFF_REPORT_HPP

#include "obs/diff/diff.hpp"
#include "obs/diff/paper.hpp"

#include <map>
#include <string>
#include <vector>

namespace phantom::obs::diff {

struct ReportTable
{
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
    std::string note;   ///< rendered after the table when non-empty
};

struct ReportSection
{
    std::string title;
    std::vector<std::string> paragraphs;
    std::vector<ReportTable> tables;
};

struct Report
{
    std::string title;
    std::vector<ReportSection> sections;
    bool pass = true;
};

/**
 * Assemble the full report for a comparison: @p diffs per bench
 * (empty for a conformance-only report) and the current documents for
 * the paper-conformance section.
 */
Report buildReport(const std::vector<BenchDiff>& diffs,
                   const std::map<std::string, runner::JsonValue>& current,
                   const DiffOptions& options);

std::string renderMarkdown(const Report& report);
std::string renderHtml(const Report& report);

} // namespace phantom::obs::diff

#endif // PHANTOM_OBS_DIFF_REPORT_HPP
