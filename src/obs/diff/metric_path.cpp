#include "obs/diff/metric_path.hpp"

#include <algorithm>
#include <cstring>

namespace phantom::obs::diff {

using runner::JsonValue;

const char*
metricClassName(MetricClass cls)
{
    switch (cls) {
      case MetricClass::Deterministic: return "deterministic";
      case MetricClass::Measured:      return "measured";
      case MetricClass::Informational: return "informational";
    }
    return "?";
}

namespace {

bool
isHistogramNode(const JsonValue& node)
{
    return node.isObject() && node.find("buckets") != nullptr &&
           node.find("count") != nullptr;
}

void
flatten(const std::string& path, const JsonValue& node,
        std::vector<MetricLeaf>& out)
{
    switch (node.kind()) {
      case JsonValue::Kind::Object:
        if (isHistogramNode(node)) {
            out.push_back({path, LeafKind::Histogram, &node});
            return;
        }
        for (const auto& [key, child] : node.members())
            flatten(path.empty() ? key : path + "." + key, child, out);
        return;
      case JsonValue::Kind::Array:
        out.push_back({path, LeafKind::List, &node});
        return;
      case JsonValue::Kind::String:
        out.push_back({path, LeafKind::Text, &node});
        return;
      default:
        out.push_back({path, LeafKind::Scalar, &node});
        return;
    }
}

struct ClassRule
{
    const char* prefix;
    MetricClass cls;
};

// Longest-prefix wins; the table is checked in order after sorting the
// candidates by prefix length, so keep entries self-contained.
constexpr ClassRule kRules[] = {
    // Provenance: records *which tree* produced the file — changes on
    // every commit and must not fail a baseline diff.
    {"schema", MetricClass::Informational},
    {"baseline_of", MetricClass::Informational},
    {"metrics.manifest.git_describe", MetricClass::Informational},

    // Scheduling detail: depends on the host, the job count and thread
    // timing. Reported only.
    {"jobs", MetricClass::Informational},
    {"metrics.measured.counters.scheduler.steals",
     MetricClass::Informational},
    {"metrics.measured.gauges.scheduler.jobs", MetricClass::Informational},
    {"metrics.measured.gauges.scheduler.shard_imbalance",
     MetricClass::Informational},
    {"metrics.measured.gauges.scheduler.trials_per_second",
     MetricClass::Informational},
    // Ring-buffer accounting varies with shard count and interleaving;
    // the dropped counter in particular must never be compared as
    // deterministic (a truncated trace is not a model change).
    {"metrics.measured.counters.trace.", MetricClass::Informational},
    // Snapshot-store effectiveness (hits/misses/bytes) depends on the
    // shard split and on whether PHANTOM_SNAP[_DIR] is set; the model
    // output is identical either way, so never gate on these.
    {"metrics.measured.counters.snap.", MetricClass::Informational},
    // Decode-cache effectiveness depends on PHANTOM_DECODE_CACHE (all
    // zeros when disabled) while the simulated output is bit-identical,
    // so hits/misses/invalidates are report-only.
    {"metrics.measured.counters.decode_cache.", MetricClass::Informational},
    {"timing.speedup", MetricClass::Informational},
    // Host-time self-profiler output (PHANTOM_PROF): pure wall-clock
    // observation of the simulator process, never comparable across
    // runs or hosts.
    {"profile.", MetricClass::Informational},

    // Wall-clock derived, same-host comparable within tolerance.
    {"metrics.measured.", MetricClass::Measured},
    {"timing.", MetricClass::Measured},

    // Seeded-simulation sections: must be bit-identical.
    {"bench", MetricClass::Deterministic},
    {"campaign_seed", MetricClass::Deterministic},
    {"experiments.", MetricClass::Deterministic},
    {"metrics.deterministic.", MetricClass::Deterministic},
    {"metrics.manifest.", MetricClass::Deterministic},
};

} // namespace

std::vector<MetricLeaf>
enumerateMetricPaths(const JsonValue& doc)
{
    std::vector<MetricLeaf> leaves;
    flatten("", doc, leaves);
    std::sort(leaves.begin(), leaves.end(),
              [](const MetricLeaf& a, const MetricLeaf& b) {
                  return a.path < b.path;
              });
    return leaves;
}

MetricClass
classifyMetricPath(const std::string& path)
{
    const ClassRule* best = nullptr;
    std::size_t best_len = 0;
    for (const ClassRule& rule : kRules) {
        std::size_t len = std::strlen(rule.prefix);
        if (len < best_len || path.compare(0, len, rule.prefix) != 0)
            continue;
        // A prefix not ending in '.' must match a whole path segment
        // ("jobs" must not classify "jobs_extra").
        if (rule.prefix[len - 1] != '.' && path.size() > len &&
            path[len] != '.')
            continue;
        best = &rule;
        best_len = len;
    }
    return best != nullptr ? best->cls : MetricClass::Deterministic;
}

} // namespace phantom::obs::diff
