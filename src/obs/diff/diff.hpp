/**
 * @file
 * Baseline/comparison engine for phantom-bench-results documents.
 *
 * Two documents are flattened through the metric-path registry and
 * compared path by path. Deterministic leaves must be structurally
 * identical; measured leaves pass a configurable relative-tolerance
 * test (scalars) or a total-variation-distance test (histograms);
 * informational leaves are reported but never fail. A metric present on
 * only one side is always reported — a deterministic or measured
 * one-sided metric fails the diff, it is never silently skipped.
 */

#ifndef PHANTOM_OBS_DIFF_DIFF_HPP
#define PHANTOM_OBS_DIFF_DIFF_HPP

#include "obs/diff/metric_path.hpp"
#include "runner/json.hpp"
#include "sim/types.hpp"

#include <string>
#include <vector>

namespace phantom::obs::diff {

struct DiffOptions
{
    /** Relative tolerance for measured scalars: |a-b|/max(|a|,|b|). */
    double relTol = 0.25;

    /** Total-variation threshold for measured histograms, in [0,1]. */
    double histTol = 0.35;

    /**
     * Defaults overridden by PHANTOM_DIFF_RELTOL / PHANTOM_DIFF_HISTTOL
     * (the regression-gate CTest sets them generously so same-host load
     * spikes don't flake the gate; see OBSERVABILITY.md).
     */
    static DiffOptions fromEnv();
};

enum class DiffStatus {
    Match,               ///< structurally identical
    WithinTolerance,     ///< measured, differs but inside tolerance
    DeterministicDrift,  ///< deterministic leaf differs — gate fails
    MeasuredRegression,  ///< measured leaf beyond tolerance — gate fails
    MissingInBaseline,   ///< only the current run has this metric
    MissingInCurrent,    ///< only the baseline has this metric
    Info,                ///< informational difference, never fails
};

const char* diffStatusName(DiffStatus status);

struct MetricDiff
{
    std::string path;
    MetricClass cls = MetricClass::Deterministic;
    DiffStatus status = DiffStatus::Match;
    std::string baseline;   ///< rendered value, "-" when absent
    std::string current;    ///< rendered value, "-" when absent
    double delta = 0.0;     ///< relative delta or histogram distance

    bool failing() const;
};

struct DiffSummary
{
    u64 compared = 0;
    u64 matches = 0;
    u64 withinTolerance = 0;
    u64 drifts = 0;
    u64 regressions = 0;
    u64 missing = 0;   ///< one-sided deterministic/measured leaves
    u64 info = 0;
};

/** One row of the "Top host phases" comparison (see BenchDiff). */
struct ProfilePhaseRow
{
    std::string phase;          ///< dotted phase name ("decode.miss")
    u64 count = 0;              ///< current-run entry count
    double baselineSelfMs = 0;  ///< estimated self ms, -1 when absent
    double currentSelfMs = 0;   ///< estimated self ms in the current run
};

struct BenchDiff
{
    std::string bench;
    DiffSummary summary;
    /** Every non-Match entry, sorted by path (Match entries are only
     *  counted: Table-1 alone contributes hundreds of identical paths). */
    std::vector<MetricDiff> entries;

    /** Top host phases by current-run estimated self time, filled only
     *  when BOTH compared documents carry a host-profile section
     *  (PHANTOM_PROF runs). Informational — never part of pass(). */
    std::vector<ProfilePhaseRow> profileTop;

    bool
    pass() const
    {
        return summary.drifts == 0 && summary.regressions == 0 &&
               summary.missing == 0;
    }
};

/** Compact human rendering of a leaf ("3.25", "EX", "hist n=40 mean=512",
 *  "[12 items]"). */
std::string renderLeaf(const MetricLeaf& leaf);

/**
 * Total-variation distance between two histogram nodes' bucket
 * distributions, in [0,1]. An empty histogram against a non-empty one
 * is at distance 1 (maximal); two empty ones at distance 0.
 */
double histogramDistance(const runner::JsonValue& a,
                         const runner::JsonValue& b);

/** Compare @p baseline and @p current documents for bench @p bench. */
BenchDiff diffResults(const std::string& bench,
                      const runner::JsonValue& baseline,
                      const runner::JsonValue& current,
                      const DiffOptions& options = {});

} // namespace phantom::obs::diff

#endif // PHANTOM_OBS_DIFF_DIFF_HPP
