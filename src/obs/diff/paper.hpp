/**
 * @file
 * Paper-expected values for the reproduced tables/figures, checked
 * against a phantom-bench-results document.
 *
 * These checks compare the *shape* the paper reports (which Table-1
 * cell reaches which stage, where the Figure-6 dip sits, how many
 * Figure-7 parity functions exist, accuracy bands) — not absolute
 * bits/s or seconds, which the simulator legitimately compresses. They
 * feed the conformance section of the bench_report output and are
 * informational: the regression gate is the baseline diff, conformance
 * failures are surfaced for a human.
 */

#ifndef PHANTOM_OBS_DIFF_PAPER_HPP
#define PHANTOM_OBS_DIFF_PAPER_HPP

#include "runner/json.hpp"

#include <string>
#include <vector>

namespace phantom::obs::diff {

struct PaperCheck
{
    std::string figure;     ///< "Table 1", "Fig. 6", ...
    std::string item;       ///< what is being checked
    std::string expected;   ///< paper-side value
    std::string actual;     ///< value found in the document
    bool pass = false;
    bool applicable = true; ///< false when the document lacks the data
};

/**
 * All conformance checks applying to @p bench ("bench_table1", ...),
 * evaluated against @p doc. Unknown benches yield an empty list.
 */
std::vector<PaperCheck> paperConformance(const std::string& bench,
                                         const runner::JsonValue& doc);

/** Expected Table-1 cell ("EX"/"ID"/"IF"/"."/"--") for a µarch and a
 *  row-major cell index in attack::table1CellKeys() order. */
std::string expectedTable1Cell(const std::string& uarch,
                               std::size_t cell_index);

} // namespace phantom::obs::diff

#endif // PHANTOM_OBS_DIFF_PAPER_HPP
