#include "obs/diff/paper.hpp"

#include "attack/experiment.hpp"

#include <cstdio>

namespace phantom::obs::diff {

using runner::JsonValue;

namespace {

std::string
renderNumber(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

const double*
numberAt(const JsonValue& doc, const std::string& path, double& slot)
{
    const JsonValue* node = doc.findPath(path);
    if (node == nullptr || node->kind() != JsonValue::Kind::Number)
        return nullptr;
    slot = node->number();
    return &slot;
}

const std::string*
stringAt(const JsonValue& doc, const std::string& path)
{
    const JsonValue* node = doc.findPath(path);
    if (node == nullptr || node->kind() != JsonValue::Kind::String)
        return nullptr;
    return &node->string();
}

PaperCheck
missing(const char* figure, std::string item, std::string expected)
{
    PaperCheck check;
    check.figure = figure;
    check.item = std::move(item);
    check.expected = std::move(expected);
    check.actual = "(absent)";
    check.applicable = false;
    return check;
}

PaperCheck
threshold(const char* figure, std::string item, const JsonValue& doc,
          const std::string& path, double min, double max,
          std::string expected)
{
    double value = 0.0;
    if (numberAt(doc, path, value) == nullptr)
        return missing(figure, std::move(item), std::move(expected));
    PaperCheck check;
    check.figure = figure;
    check.item = std::move(item);
    check.expected = std::move(expected);
    check.actual = renderNumber(value);
    check.pass = value >= min && value <= max;
    return check;
}

PaperCheck
labelEquals(const char* figure, std::string item, const JsonValue& doc,
            const std::string& path, const std::string& expected)
{
    const std::string* value = stringAt(doc, path);
    if (value == nullptr)
        return missing(figure, std::move(item), expected);
    PaperCheck check;
    check.figure = figure;
    check.item = std::move(item);
    check.expected = expected;
    check.actual = *value;
    check.pass = *value == expected;
    return check;
}

// Table 1, from the paper (and mirrored by tests/test_table1_golden):
// 25 cells row-major, training kind outer, in attack::table1Kinds()
// order. E=EX, D=ID, F=IF, .=no signal, -=not applicable.
struct Table1Pattern
{
    const char* prefix;   ///< µarch name prefix
    const char* cells;    ///< 25-char matrix
};

constexpr Table1Pattern kTable1[] = {
    // Zen 1/2: every applicable cell executes (phantom window, Spectre,
    // Retbleed, SLS).
    {"zen1", "EEEEE" "EEEEE" "EEEEE" "EEE-E" "EEEE-"},
    {"zen2", "EEEEE" "EEEEE" "EEEEE" "EEE-E" "EEEE-"},
    // Zen 3/4: decode everywhere, execute only for jmp* x jmp*.
    {"zen3", "EDDDD" "DDDDD" "DDDDD" "DDD-D" "DDDD-"},
    {"zen4", "EDDDD" "DDDDD" "DDDDD" "DDD-D" "DDDD-"},
    // Intel: like Zen 3/4 but asymmetric jmp* victims are opaque.
    {"intel", "EDDDD" ".DDDD" ".DDDD" ".DD-D" "DDDD-"},
};

std::string
cellText(char c)
{
    switch (c) {
      case 'E': return "EX";
      case 'D': return "ID";
      case 'F': return "IF";
      case '-': return "--";
      default:  return ".";
    }
}

void
checkTable1(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    const JsonValue* experiments = doc.find("experiments");
    if (experiments == nullptr || !experiments->isObject()) {
        out.push_back(missing("Table 1", "experiments", "per-uarch grid"));
        return;
    }
    const std::vector<std::string> keys = attack::table1CellKeys();
    for (const auto& [uarch, experiment] : experiments->members()) {
        (void)experiment;
        const Table1Pattern* pattern = nullptr;
        for (const Table1Pattern& p : kTable1)
            if (uarch.rfind(p.prefix, 0) == 0)
                pattern = &p;
        if (pattern == nullptr)
            continue;

        std::size_t matched = 0;
        std::size_t present = 0;
        for (std::size_t cell = 0; cell < keys.size(); ++cell) {
            std::string expected = cellText(pattern->cells[cell]);
            const std::string* actual = stringAt(
                doc, "experiments." + uarch + ".labels." + keys[cell]);
            if (actual == nullptr)
                continue;
            ++present;
            if (*actual == expected) {
                ++matched;
                continue;
            }
            PaperCheck check;
            check.figure = "Table 1";
            check.item = uarch + ": " + keys[cell];
            check.expected = expected;
            check.actual = *actual;
            out.push_back(std::move(check));
        }

        PaperCheck summary;
        summary.figure = "Table 1";
        summary.item = uarch + " detection stages";
        summary.expected = "25 paper cells";
        summary.actual = renderNumber(static_cast<double>(matched)) +
                         "/" +
                         renderNumber(static_cast<double>(present)) +
                         " match";
        summary.pass = present == keys.size() && matched == present;
        summary.applicable = present > 0;
        out.push_back(std::move(summary));
    }
}

void
checkFig6(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    const JsonValue* experiments = doc.find("experiments");
    if (experiments == nullptr || !experiments->isObject()) {
        out.push_back(missing("Fig. 6", "experiments", "dip at 0xac0"));
        return;
    }
    for (const auto& [uarch, experiment] : experiments->members()) {
        (void)experiment;
        double dip = 0.0;
        if (numberAt(doc, "experiments." + uarch + ".scalars.dip_offset",
                     dip) == nullptr)
            continue;
        PaperCheck check;
        check.figure = "Fig. 6";
        check.item = uarch + " µop-cache dip offset";
        check.expected = "0xac0";
        char buf[32];
        std::snprintf(buf, sizeof buf, "0x%03llx",
                      static_cast<unsigned long long>(dip));
        check.actual = buf;
        check.pass = static_cast<u64>(dip) == 0xac0;
        out.push_back(std::move(check));
    }
}

void
checkFig7(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    double published = 12.0;
    numberAt(doc, "experiments.solver.scalars.published", published);
    out.push_back(threshold(
        "Fig. 7", "parity functions recovered", doc,
        "experiments.solver.scalars.matched_figure7", published,
        published, "all " + renderNumber(published) + " functions"));
    out.push_back(threshold("Fig. 7", "zen2 brute-force patterns", doc,
                            "experiments.brute_force.scalars.zen2_patterns",
                            1.0, 1e9, ">= 1 (paper: instant)"));
    out.push_back(threshold("Fig. 7", "zen3 brute-force patterns", doc,
                            "experiments.brute_force.scalars.zen3_patterns",
                            0.0, 0.0, "0 (paper: none up to 6 flips)"));
}

void
checkMds(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    out.push_back(threshold("§7.4 MDS", "zen2 leak accuracy (median)",
                            doc,
                            "experiments.zen2.metrics.accuracy.median",
                            0.95, 1.0, "100%"));
    out.push_back(labelEquals(
        "§7.4 MDS", "zen4 negative control", doc,
        "experiments.negative_control.labels.zen4_supported", "no"));
}

void
checkTable2(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    const struct
    {
        const char* experiment;
        const char* item;
        double min;
        const char* expected;
    } rows[] = {
        {"p1_zen1", "P1 zen1 accuracy", 0.90, "96.30%"},
        {"p1_zen2", "P1 zen2 accuracy", 0.88, "93.04%"},
        {"p1_zen3", "P1 zen3 accuracy", 0.95, "100%"},
        {"p1_zen4", "P1 zen4 accuracy", 0.85, "90.67%"},
        {"p2_zen1", "P2 zen1 accuracy", 0.95, "100%"},
        {"p2_zen2", "P2 zen2 accuracy", 0.94, "99.28%"},
    };
    for (const auto& row : rows)
        out.push_back(threshold(
            "Table 2", row.item, doc,
            std::string("experiments.") + row.experiment +
                ".metrics.accuracy.median",
            row.min, 1.0, row.expected));
    // The execute channel exists only on Zen 1/2.
    PaperCheck zen34;
    zen34.figure = "Table 2";
    zen34.item = "P2 restricted to Zen 1/2";
    zen34.expected = "no p2_zen3 / p2_zen4 rows";
    bool leaked =
        doc.findPath("experiments.p2_zen3") != nullptr ||
        doc.findPath("experiments.p2_zen4") != nullptr;
    zen34.actual = leaked ? "execute channel on Zen 3/4" : "absent";
    zen34.pass = !leaked;
    out.push_back(std::move(zen34));
}

void
checkKaslr(const char* figure, const JsonValue& doc,
           const std::vector<std::pair<std::string, const char*>>& rows,
           std::vector<PaperCheck>& out)
{
    for (const auto& [uarch, expected] : rows)
        out.push_back(threshold(
            figure, uarch + " derandomization accuracy", doc,
            "experiments." + uarch + ".scalars.accuracy", 0.80, 1.0,
            expected));
}

void
checkGadgets(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    const JsonValue* experiments = doc.find("experiments");
    if (experiments == nullptr || !experiments->isObject()) {
        out.push_back(
            missing("§9.3", "experiments", "expansion factor > 1"));
        return;
    }
    for (const auto& [window, experiment] : experiments->members()) {
        (void)experiment;
        out.push_back(threshold(
            "§9.3", window + " gadget expansion factor", doc,
            "experiments." + window + ".scalars.ratio", 1.0, 1e9,
            "> 1x (paper: ~3.9x on Linux)"));
    }
}

void
checkAblation(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    out.push_back(labelEquals("Ablation A3",
                              "zen34 hash allows cross-priv injection",
                              doc, "experiments.a3_hash.labels.zen34",
                              "yes"));
    out.push_back(labelEquals(
        "Ablation A3", "intel-salted hash blocks injection", doc,
        "experiments.a3_hash.labels.intel-salted", "no"));
}

void
checkMitigations(const JsonValue& doc, std::vector<PaperCheck>& out)
{
    out.push_back(threshold(
        "§8", "IBPB kills the P1 channel (accuracy)", doc,
        "experiments.ibpb.scalars.accuracy_ibpb", 0.0, 0.65,
        "~50% (channel dead)"));
    out.push_back(threshold(
        "§8", "P1 channel without IBPB (accuracy)", doc,
        "experiments.ibpb.scalars.accuracy_no_ibpb", 0.90, 1.0,
        "~100%"));
    out.push_back(threshold(
        "§8", "SuppressBPOnNonBr overhead (zen2)", doc,
        "experiments.suppress_overhead.scalars.zen2", 0.0, 0.05,
        "0.69% (small)"));
}

} // namespace

std::string
expectedTable1Cell(const std::string& uarch, std::size_t cell_index)
{
    for (const Table1Pattern& p : kTable1)
        if (uarch.rfind(p.prefix, 0) == 0 && cell_index < 25)
            return cellText(p.cells[cell_index]);
    return "?";
}

std::vector<PaperCheck>
paperConformance(const std::string& bench, const JsonValue& doc)
{
    std::vector<PaperCheck> out;
    if (bench == "bench_table1")
        checkTable1(doc, out);
    else if (bench == "bench_fig6")
        checkFig6(doc, out);
    else if (bench == "bench_fig7")
        checkFig7(doc, out);
    else if (bench == "bench_mds")
        checkMds(doc, out);
    else if (bench == "bench_table2")
        checkTable2(doc, out);
    else if (bench == "bench_table3")
        checkKaslr("Table 3", doc,
                   {{"zen2", "97%"}, {"zen3", "100%"}, {"zen4", "95%"}},
                   out);
    else if (bench == "bench_table4")
        checkKaslr("Table 4", doc, {{"zen1", "100%"}, {"zen2", "90%"}},
                   out);
    else if (bench == "bench_table5")
        checkKaslr("Table 5", doc, {{"zen1", "99%"}, {"zen2", "100%"}},
                   out);
    else if (bench == "bench_gadgets")
        checkGadgets(doc, out);
    else if (bench == "bench_ablation")
        checkAblation(doc, out);
    else if (bench == "bench_mitigations")
        checkMitigations(doc, out);
    return out;
}

} // namespace phantom::obs::diff
