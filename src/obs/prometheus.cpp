#include "obs/prometheus.hpp"

#include <cctype>
#include <cstdio>

namespace phantom::obs {

namespace {

void
appendU64(std::string& out, u64 v)
{
    char buffer[24];
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(v));
    out += buffer;
}

void
appendDouble(std::string& out, double v)
{
    char buffer[40];
    std::snprintf(buffer, sizeof buffer, "%.17g", v);
    out += buffer;
}

void
appendType(std::string& out, const std::string& name, const char* kind)
{
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += kind;
    out += '\n';
}

/** Inclusive upper bound of log2 bucket @p i (1, 3, 7, 15, ...). */
u64
bucketLe(int i)
{
    if (i >= 63)
        return ~u64{0};
    return (u64{1} << (i + 1)) - 1;
}

} // namespace

std::string
promMetricName(const std::string& name, const std::string& prefix)
{
    std::string out = prefix;
    for (char c : name) {
        bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
            c == '_' || c == ':';
        out += legal ? c : '_';
    }
    if (out.empty() ||
        std::isdigit(static_cast<unsigned char>(out[0])) != 0)
        out.insert(out.begin(), '_');
    return out;
}

std::string
promExposition(const MetricsRegistry& registry, const std::string& prefix)
{
    std::string out;

    for (const auto& [name, counter] : registry.counters()) {
        std::string metric = promMetricName(name, prefix);
        appendType(out, metric, "counter");
        out += metric;
        out += ' ';
        appendU64(out, counter.value());
        out += '\n';
    }

    for (const auto& [name, gauge] : registry.gauges()) {
        std::string metric = promMetricName(name, prefix);
        appendType(out, metric, "gauge");
        out += metric;
        out += ' ';
        appendDouble(out, gauge.value());
        out += '\n';
    }

    for (const auto& [name, histogram] : registry.histograms()) {
        std::string metric = promMetricName(name, prefix);
        appendType(out, metric, "histogram");
        // Cumulative buckets through the highest non-empty one; the
        // +Inf bucket always closes the series at the total count.
        int highest = -1;
        for (int i = 0; i < Histogram::kBuckets; ++i)
            if (histogram.buckets()[static_cast<std::size_t>(i)] != 0)
                highest = i;
        u64 cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
            cumulative += histogram.buckets()[static_cast<std::size_t>(i)];
            out += metric;
            out += "_bucket{le=\"";
            appendU64(out, bucketLe(i));
            out += "\"} ";
            appendU64(out, cumulative);
            out += '\n';
        }
        out += metric;
        out += "_bucket{le=\"+Inf\"} ";
        appendU64(out, histogram.count());
        out += '\n';
        out += metric;
        out += "_sum ";
        appendU64(out, histogram.sum());
        out += '\n';
        out += metric;
        out += "_count ";
        appendU64(out, histogram.count());
        out += '\n';
    }

    return out;
}

} // namespace phantom::obs
