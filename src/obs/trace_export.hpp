/**
 * @file
 * Chrome trace_event-format exporter for pipeline traces.
 *
 * Renders the per-shard event streams captured by RingTraceSink as a
 * JSON document loadable in Perfetto / chrome://tracing: one thread
 * track per scheduler shard, one nested duration slice per speculation
 * episode (with IF/ID/EX child slices sized by how deep the phantom
 * target advanced), and instant markers for resteers and squashes.
 *
 * Timestamps map one simulated cycle to one microsecond of trace time —
 * the machine clock is the only meaningful time base here, and µs keeps
 * the slices readable in the viewers' default zoom.
 *
 * Enabled per run with PHANTOM_TRACE=<output path> (see OBSERVABILITY.md).
 */

#ifndef PHANTOM_OBS_TRACE_EXPORT_HPP
#define PHANTOM_OBS_TRACE_EXPORT_HPP

#include "obs/trace.hpp"

#include <string>
#include <vector>

namespace phantom::obs {

/** One shard's retained events plus its ring-overwrite count. */
struct ShardTrace
{
    unsigned shard = 0;
    u64 dropped = 0;               ///< ring overwrites (never silent)
    std::vector<TraceEvent> events;
};

struct ChromeTraceOptions
{
    std::string processName = "phantom";
    /** Maps TraceEvent::arg8 of an EpisodeEnd to a label ("phantom",
     *  "spectre", ...). Null renders "kind<arg8>". */
    const char* (*episodeLabel)(u8 kind) = nullptr;
};

/** Serialize @p shards to a Chrome trace_event JSON document. */
std::string chromeTraceJson(const std::vector<ShardTrace>& shards,
                            const ChromeTraceOptions& options = {});

/** chromeTraceJson() to @p path. Returns false (and logs) on I/O error. */
bool writeChromeTrace(const std::string& path,
                      const std::vector<ShardTrace>& shards,
                      const ChromeTraceOptions& options = {});

/** $PHANTOM_TRACE, or "" when tracing is not requested. */
std::string tracePathFromEnv();

} // namespace phantom::obs

#endif // PHANTOM_OBS_TRACE_EXPORT_HPP
