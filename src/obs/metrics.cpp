#include "obs/metrics.hpp"

namespace phantom::obs {

void
MetricsRegistry::merge(const MetricsRegistry& other)
{
    for (const auto& [name, c] : other.counters_)
        counters_[name].inc(c.value());
    for (const auto& [name, g] : other.gauges_)
        gauges_[name].set(g.value());
    for (const auto& [name, h] : other.histograms_)
        histograms_[name].merge(h);
}

} // namespace phantom::obs
