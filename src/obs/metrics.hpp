/**
 * @file
 * Campaign-level metrics: counters, gauges, and fixed-log2-bucket
 * histograms, collected in a named registry.
 *
 * Two registries per campaign by convention:
 *  - "deterministic": values derived only from seeded simulation (cycle
 *    attribution, episode counts, PMC aggregates). These must be
 *    bit-identical for any PHANTOM_JOBS, which the trace_check CTest
 *    enforces; merges therefore happen in shard-index order and all
 *    accumulators are integral (no float summation order issues).
 *  - "measured": wall-clock derived values (trials/sec, steal counts,
 *    per-trial time histograms) that legitimately vary run to run.
 */

#ifndef PHANTOM_OBS_METRICS_HPP
#define PHANTOM_OBS_METRICS_HPP

#include "sim/types.hpp"

#include <array>
#include <map>
#include <string>

namespace phantom::obs {

/** Monotonic integer counter. */
class Counter
{
  public:
    void inc(u64 n = 1) { value_ += n; }
    u64 value() const { return value_; }

  private:
    u64 value_ = 0;
};

/** Last-write-wins instantaneous value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Histogram over u64 samples with fixed log2 buckets: bucket i counts
 * samples v with 2^i <= v < 2^(i+1) (bucket 0 additionally holds v in
 * {0, 1}). Fixed bucket boundaries make merged histograms independent
 * of merge order, and the integral count/sum keep aggregation exact.
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 64;

    void
    observe(u64 v)
    {
        buckets_[bucketOf(v)] += 1;
        count_ += 1;
        sum_ += v;
    }

    /** Index of the log2 bucket holding @p v. */
    static int
    bucketOf(u64 v)
    {
        int b = 0;
        while (v > 1) {
            v >>= 1;
            ++b;
        }
        return b;
    }

    /** Inclusive lower bound of bucket @p i (0, 2, 4, 8, ...). */
    static u64
    bucketLo(int i)
    {
        return i == 0 ? 0 : (1ull << i);
    }

    u64 count() const { return count_; }
    u64 sum() const { return sum_; }
    double mean() const { return count_ == 0 ? 0.0 : double(sum_) / double(count_); }
    const std::array<u64, kBuckets>& buckets() const { return buckets_; }

    void
    merge(const Histogram& other)
    {
        for (int i = 0; i < kBuckets; ++i)
            buckets_[i] += other.buckets_[i];
        count_ += other.count_;
        sum_ += other.sum_;
    }

  private:
    std::array<u64, kBuckets> buckets_{};
    u64 count_ = 0;
    u64 sum_ = 0;
};

/**
 * Named metric registry. Lookup creates on first use; names are kept in
 * sorted order (std::map) so exports serialize deterministically.
 * Not thread-safe: use one registry per shard and merge() after join.
 */
class MetricsRegistry
{
  public:
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram& histogram(const std::string& name) { return histograms_[name]; }

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Gauge>& gauges() const { return gauges_; }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() && histograms_.empty();
    }

    /**
     * Fold @p other into this registry: counters and histograms add,
     * gauges take @p other's value (call in shard-index order for a
     * deterministic result).
     */
    void merge(const MetricsRegistry& other);

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace phantom::obs

#endif // PHANTOM_OBS_METRICS_HPP
