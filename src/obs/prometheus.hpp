/**
 * @file
 * Prometheus text exposition (format 0.0.4) for a MetricsRegistry,
 * dependency-free so the base observability layer stays JSON-free.
 *
 * Mapping:
 *  - Counter  → `# TYPE <name> counter` + one sample
 *  - Gauge    → `# TYPE <name> gauge` + one sample
 *  - Histogram→ `# TYPE <name> histogram` + cumulative `<name>_bucket`
 *    samples with `le` labels at the log2 bucket upper bounds
 *    (inclusive: bucket i covers [2^i, 2^(i+1)), so le = 2^(i+1)-1;
 *    bucket 0 covers {0,1}, le = 1), a `+Inf` bucket, `_sum`, `_count`.
 *
 * Registry names are dotted ("serve.queue_wait_micros"); exposition
 * names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so promMetricName()
 * rewrites every illegal character to '_' and prepends the given
 * prefix ("phantom_" by default). Within one registry the rewrite is
 * collision-free as long as names differ by more than punctuation —
 * json_check --prom-schema re-verifies uniqueness on the scraped text.
 */

#ifndef PHANTOM_OBS_PROMETHEUS_HPP
#define PHANTOM_OBS_PROMETHEUS_HPP

#include "obs/metrics.hpp"

#include <string>

namespace phantom::obs {

/** @p name sanitized into a legal exposition metric name. */
std::string promMetricName(const std::string& name,
                           const std::string& prefix = "phantom_");

/** The whole registry as one 0.0.4 text exposition document. */
std::string promExposition(const MetricsRegistry& registry,
                           const std::string& prefix = "phantom_");

} // namespace phantom::obs

#endif // PHANTOM_OBS_PROMETHEUS_HPP
