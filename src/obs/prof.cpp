#include "obs/prof.hpp"

#include "runner/env.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace phantom::obs::prof {

namespace {

/** Phase metadata. Indexed by the enum; order must match. The shift
 *  picks the timing sample period per phase: leaves entered several
 *  times per simulated instruction are timed 1-in-2^shift (counted
 *  always), coarse region scopes are timed on every entry. */
struct PhaseInfo
{
    const char* name;
    unsigned sampleShift;
};

constexpr std::array<PhaseInfo, kPhaseCount> kPhases = {{
    {"machine.run", 0},
    {"decode.hit", 4},
    {"decode.miss", 2},
    {"decode.block_build", 0},
    {"decode.block_hit", 4},
    {"bpu.predict", 4},
    {"bpu.update", 4},
    {"mem.page_walk", 4},
    {"mem.cache", 4},
    {"spec.episode", 0},
    {"spec.exec", 0},
    {"snap.capture", 0},
    {"snap.restore", 0},
    {"snap.fork", 0},
    {"serve.dispatch", 0},
    {"fuzz.generate", 0},
    {"fuzz.oracle", 0},
    {"fuzz.minimize", 0},
}};

constexpr u32 kNoParent = 0xffffffffu;
constexpr int kMaxDepth = 32;

// ---------------------------------------------------------------------
// Clock: rdtsc calibrated against steady_clock where available, raw
// steady_clock nanoseconds otherwise. A tsc read is ~3x cheaper than a
// clock_gettime vDSO call, which matters at per-instruction frequency.

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
constexpr bool kHaveTsc = true;
inline u64
tscTicks()
{
    return __builtin_ia32_rdtsc();
}
#else
constexpr bool kHaveTsc = false;
inline u64
tscTicks()
{
    return 0;
}
#endif

inline u64
steadyNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

bool gUseTsc = false;
double gNsPerTick = 1.0;
double gNsPerTimedEvent = 0.0;
double gNsPerCountedEvent = 0.0;

inline u64
nowTicks()
{
    return gUseTsc ? tscTicks() : steadyNs();
}

inline u64
ticksToNs(u64 ticks)
{
    return gUseTsc
        ? static_cast<u64>(static_cast<double>(ticks) * gNsPerTick)
        : ticks;
}

// ---------------------------------------------------------------------
// Shards. One per thread, registered lazily on the thread's first
// profiled scope and never unregistered (a campaign's workers die, the
// numbers they recorded do not). The shard mutex serializes the timed
// close path against collect(); the count-only path touches thread
// state exclusively and flushes under the same lock at the next timed
// close, so a sampled-out entry costs no synchronization at all.

struct PhaseAgg
{
    u64 count = 0;       ///< flushed entry count (exact)
    u64 timedCount = 0;
    u64 totalNs = 0;
    u64 selfNs = 0;
    Histogram hist;
};

struct PathEntry
{
    u32 parent = kNoParent;  ///< index into the same paths vector
    Phase phase = Phase::Count;
    u64 count = 0;
    u64 totalNs = 0;
    u64 selfNs = 0;
};

struct Shard
{
    std::mutex mutex;
    std::array<PhaseAgg, kPhaseCount> phases;
    std::vector<PathEntry> paths;
    /** (parent<<8 | phase) -> path id. Owner-thread-only: collect()
     *  walks paths, never this index, so lookups need no lock. */
    std::unordered_map<u64, u32> pathIndex;
};

std::mutex&
registryMutex()
{
    static std::mutex mutex;
    return mutex;
}

std::vector<std::unique_ptr<Shard>>&
registry()
{
    static std::vector<std::unique_ptr<Shard>> shards;
    return shards;
}

struct Frame
{
    u64 startTicks = 0;
    u64 childNs = 0;
    u32 pathId = 0;
    Phase phase = Phase::Count;
};

struct ThreadState
{
    Shard* shard = nullptr;
    int depth = 0;
    std::array<u64, kPhaseCount> pendingCount{};
    std::array<u32, kPhaseCount> tick{};
    Frame stack[kMaxDepth];

    /** A thread can end with counted-but-untimed entries still pending
     *  (its last profiled scope was sampled out, so no timed close ever
     *  flushed them). Flush at thread exit — entry counts must stay
     *  exact regardless of how trials were split across workers. Safe
     *  on the main thread too: thread-local destruction is sequenced
     *  before the static registry owning the shard goes away. */
    ~ThreadState()
    {
        if (shard == nullptr)
            return;
        std::lock_guard<std::mutex> lock(shard->mutex);
        for (int i = 0; i < kPhaseCount; ++i) {
            shard->phases[static_cast<std::size_t>(i)].count +=
                pendingCount[static_cast<std::size_t>(i)];
            pendingCount[static_cast<std::size_t>(i)] = 0;
        }
    }
};

thread_local ThreadState tState;

/** Id of the (parent, phase) call path, creating the entry on first
 *  sight. Creation takes the shard mutex (paths is read by collect);
 *  the lookup itself is owner-only and lock-free. */
u32
pathIdFor(Shard& shard, u32 parent, Phase phase)
{
    u64 key = (static_cast<u64>(parent) << 8) |
              static_cast<u64>(static_cast<u8>(phase));
    auto it = shard.pathIndex.find(key);
    if (it != shard.pathIndex.end())
        return it->second;
    u32 id;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        id = static_cast<u32>(shard.paths.size());
        PathEntry entry;
        entry.parent = parent;
        entry.phase = phase;
        shard.paths.push_back(entry);
    }
    shard.pathIndex.emplace(key, id);
    return id;
}

bool
openOn(ThreadState& ts, Phase phase)
{
    int p = static_cast<int>(phase);
    ts.pendingCount[p] += 1;
    unsigned shift = kPhases[p].sampleShift;
    if (shift != 0 && (ts.tick[p]++ & ((1u << shift) - 1)) != 0)
        return false;
    if (ts.depth >= kMaxDepth)
        return false;
    u32 parent =
        ts.depth > 0 ? ts.stack[ts.depth - 1].pathId : kNoParent;
    Frame& frame = ts.stack[ts.depth++];
    frame.phase = phase;
    frame.childNs = 0;
    frame.pathId = pathIdFor(*ts.shard, parent, phase);
    // Timestamp last, so path-table setup is not charged to the phase.
    frame.startTicks = nowTicks();
    return true;
}

void
closeOn(ThreadState& ts)
{
    u64 end = nowTicks();
    Frame& frame = ts.stack[--ts.depth];
    u64 dur = ticksToNs(end - frame.startTicks);
    u64 self = dur > frame.childNs ? dur - frame.childNs : 0;

    Shard& shard = *ts.shard;
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (int i = 0; i < kPhaseCount; ++i) {
            if (ts.pendingCount[static_cast<std::size_t>(i)] == 0)
                continue;
            shard.phases[static_cast<std::size_t>(i)].count +=
                ts.pendingCount[static_cast<std::size_t>(i)];
            ts.pendingCount[static_cast<std::size_t>(i)] = 0;
        }
        PhaseAgg& agg = shard.phases[static_cast<int>(frame.phase)];
        agg.timedCount += 1;
        agg.totalNs += dur;
        agg.selfNs += self;
        agg.hist.observe(dur);
        PathEntry& path = shard.paths[frame.pathId];
        path.count += 1;
        path.totalNs += dur;
        path.selfNs += self;
    }
    if (ts.depth > 0)
        ts.stack[ts.depth - 1].childNs += dur;
}

/** One-time clock + probe-cost calibration, on the first profiled
 *  scope of the process. Probe cost is measured by driving the real
 *  open/close machinery against a scratch shard that is never
 *  registered, so calibration leaves no trace in the data. */
void
calibrate()
{
    if (kHaveTsc) {
        using namespace std::chrono;
        auto t0 = steady_clock::now();
        u64 c0 = tscTicks();
        while (steady_clock::now() - t0 < microseconds(2000)) {
        }
        u64 c1 = tscTicks();
        auto t1 = steady_clock::now();
        if (c1 > c0) {
            gUseTsc = true;
            gNsPerTick =
                static_cast<double>(
                    duration_cast<nanoseconds>(t1 - t0).count()) /
                static_cast<double>(c1 - c0);
        }
    }

    Shard scratch;
    ThreadState ts;
    ts.shard = &scratch;
    constexpr int kIters = 8192;

    u64 t0 = steadyNs();
    for (int i = 0; i < kIters; ++i) {
        if (openOn(ts, Phase::MachineRun))
            closeOn(ts);
    }
    gNsPerTimedEvent =
        static_cast<double>(steadyNs() - t0) / kIters;

    t0 = steadyNs();
    for (int i = 0; i < kIters; ++i) {
        // tick forced off the sample point: the pure count-only path.
        ts.tick[static_cast<int>(Phase::BpuPredict)] = 1;
        if (openOn(ts, Phase::BpuPredict))
            closeOn(ts);
    }
    gNsPerCountedEvent =
        static_cast<double>(steadyNs() - t0) / kIters;
}

Shard*
registerShard()
{
    static std::once_flag once;
    std::call_once(once, calibrate);
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(std::make_unique<Shard>());
    return registry().back().get();
}

bool
initialEnabled()
{
    return runner::envU64Strict("PHANTOM_PROF", 0, 0, 1) != 0;
}

} // namespace

namespace detail {

std::atomic<bool> gEnabled{initialEnabled()};

bool
open(Phase phase)
{
    ThreadState& ts = tState;
    if (ts.shard == nullptr)
        ts.shard = registerShard();
    return openOn(ts, phase);
}

void
close()
{
    closeOn(tState);
}

} // namespace detail

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

const char*
phaseName(Phase phase)
{
    int p = static_cast<int>(phase);
    return p >= 0 && p < kPhaseCount ? kPhases[p].name : "?";
}

Phase
phaseFromName(const std::string& name)
{
    for (int p = 0; p < kPhaseCount; ++p)
        if (name == kPhases[p].name)
            return static_cast<Phase>(p);
    return Phase::Count;
}

unsigned
phaseSampleShift(Phase phase)
{
    int p = static_cast<int>(phase);
    return p >= 0 && p < kPhaseCount ? kPhases[p].sampleShift : 0;
}

double
PhaseReport::estimatedSelfNs() const
{
    if (timedCount == 0)
        return 0.0;
    return static_cast<double>(selfNs) * static_cast<double>(count) /
           static_cast<double>(timedCount);
}

double
PhaseReport::estimatedTotalNs() const
{
    if (timedCount == 0)
        return 0.0;
    return static_cast<double>(totalNs) * static_cast<double>(count) /
           static_cast<double>(timedCount);
}

u64
Report::events() const
{
    u64 n = 0;
    for (const PhaseReport& phase : phases)
        n += phase.count;
    return n;
}

u64
Report::timedEvents() const
{
    u64 n = 0;
    for (const PhaseReport& phase : phases)
        n += phase.timedCount;
    return n;
}

double
Report::estimatedOverheadNs() const
{
    u64 timed = timedEvents();
    u64 counted = events() - timed;
    return static_cast<double>(timed) * calibration.nsPerTimedEvent +
           static_cast<double>(counted) * calibration.nsPerCountedEvent;
}

Report
collect()
{
    // The calling thread can flush its own pending counts; other
    // threads flush at their next timed close. Campaign-end collection
    // happens after workers joined (their machine.run closes flushed),
    // so bench numbers are exact; a live /profilez snapshot may trail
    // by one open frame per worker.
    ThreadState& ts = tState;

    Report report;
    report.enabled = enabled();
    report.calibration.clock = gUseTsc ? "tsc" : "steady";
    report.calibration.nsPerTimedEvent = gNsPerTimedEvent;
    report.calibration.nsPerCountedEvent = gNsPerCountedEvent;

    std::array<PhaseReport, kPhaseCount> merged;
    for (int p = 0; p < kPhaseCount; ++p)
        merged[static_cast<std::size_t>(p)].phase = static_cast<Phase>(p);
    std::map<std::string, StackReport> stacks;

    std::lock_guard<std::mutex> registry_lock(registryMutex());
    for (const std::unique_ptr<Shard>& shard : registry()) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        if (shard.get() == ts.shard) {
            for (int i = 0; i < kPhaseCount; ++i) {
                shard->phases[static_cast<std::size_t>(i)].count +=
                    ts.pendingCount[static_cast<std::size_t>(i)];
                ts.pendingCount[static_cast<std::size_t>(i)] = 0;
            }
        }
        bool any = false;
        for (int p = 0; p < kPhaseCount; ++p) {
            const PhaseAgg& agg = shard->phases[static_cast<std::size_t>(p)];
            if (agg.count == 0)
                continue;
            any = true;
            PhaseReport& out = merged[static_cast<std::size_t>(p)];
            out.count += agg.count;
            out.timedCount += agg.timedCount;
            out.totalNs += agg.totalNs;
            out.selfNs += agg.selfNs;
            out.hist.merge(agg.hist);
        }
        if (any)
            report.threads += 1;

        // Path ids are created parent-before-child, so one forward
        // pass can materialize every full stack string.
        std::vector<std::string> names(shard->paths.size());
        for (std::size_t i = 0; i < shard->paths.size(); ++i) {
            const PathEntry& path = shard->paths[i];
            if (path.parent == kNoParent)
                names[i] = phaseName(path.phase);
            else
                names[i] = names[path.parent] + ";" +
                           phaseName(path.phase);
            if (path.count == 0)
                continue;
            StackReport& out = stacks[names[i]];
            out.stack = names[i];
            out.count += path.count;
            out.totalNs += path.totalNs;
            out.selfNs += path.selfNs;
        }
    }

    for (int p = 0; p < kPhaseCount; ++p)
        if (merged[static_cast<std::size_t>(p)].count > 0)
            report.phases.push_back(merged[static_cast<std::size_t>(p)]);
    for (auto& [name, stack] : stacks)
        report.stacks.push_back(std::move(stack));
    return report;
}

void
resetForTest()
{
    ThreadState& ts = tState;
    ts.pendingCount.fill(0);
    ts.tick.fill(0);
    std::lock_guard<std::mutex> registry_lock(registryMutex());
    for (const std::unique_ptr<Shard>& shard : registry()) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->phases.fill(PhaseAgg{});
        // Keep the path entries (thread-local caches hold their ids);
        // only the recorded mass is zeroed.
        for (PathEntry& path : shard->paths) {
            path.count = 0;
            path.totalNs = 0;
            path.selfNs = 0;
        }
    }
}

namespace {

void
appendEscaped(std::string& out, const std::string& text)
{
    for (char c : text) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
}

void
appendNumber(std::string& out, double value)
{
    char buffer[48];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    out += buffer;
}

/** Nodes of the merged call tree, for the Perfetto layout. */
struct TreeNode
{
    const StackReport* stack = nullptr;
    std::string leaf;  ///< last path segment (the phase name)
    std::vector<std::size_t> children;
};

/** Lay @p node out as an "X" slice at @p ts_us and recurse: children
 *  stack sequentially inside the parent's span. */
void
emitSlice(std::string& out, const std::vector<TreeNode>& nodes,
          std::size_t index, double ts_us)
{
    const TreeNode& node = nodes[index];
    double dur_us = static_cast<double>(node.stack->totalNs) / 1000.0;
    out += "  {\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"";
    appendEscaped(out, node.leaf);
    out += "\",\"ts\":";
    appendNumber(out, ts_us);
    out += ",\"dur\":";
    appendNumber(out, dur_us);
    out += ",\"args\":{\"count\":" + std::to_string(node.stack->count) +
           ",\"self_ns\":" + std::to_string(node.stack->selfNs) +
           ",\"stack\":\"";
    appendEscaped(out, node.stack->stack);
    out += "\"}},\n";

    double cursor = ts_us;
    for (std::size_t child : node.children) {
        emitSlice(out, nodes, child, cursor);
        cursor +=
            static_cast<double>(nodes[child].stack->totalNs) / 1000.0;
    }
}

} // namespace

std::string
foldedStacks(const Report& report)
{
    std::string out;
    for (const StackReport& stack : report.stacks) {
        if (stack.selfNs == 0)
            continue;
        out += stack.stack;
        out.push_back(' ');
        out += std::to_string(stack.selfNs);
        out.push_back('\n');
    }
    return out;
}

std::string
perfettoTraceJson(const Report& report)
{
    // report.stacks is sorted by stack string, so a parent always
    // precedes its children; one pass builds the tree.
    std::vector<TreeNode> nodes(report.stacks.size());
    std::map<std::string, std::size_t> byStack;
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < report.stacks.size(); ++i) {
        const StackReport& stack = report.stacks[i];
        nodes[i].stack = &stack;
        std::size_t cut = stack.stack.rfind(';');
        if (cut == std::string::npos) {
            nodes[i].leaf = stack.stack;
            roots.push_back(i);
        } else {
            nodes[i].leaf = stack.stack.substr(cut + 1);
            auto parent = byStack.find(stack.stack.substr(0, cut));
            if (parent != byStack.end())
                nodes[parent->second].children.push_back(i);
            else
                roots.push_back(i);
        }
        byStack.emplace(stack.stack, i);
    }

    std::string out;
    out += "{\"traceEvents\":[\n";
    out += "  {\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
           "\"args\":{\"name\":\"phantom host profile\"}},\n";
    out += "  {\"ph\":\"M\",\"pid\":1,\"tid\":1,"
           "\"name\":\"thread_name\","
           "\"args\":{\"name\":\"merged call tree\"}},\n";

    double cursor = 0.0;
    for (std::size_t root : roots) {
        emitSlice(out, nodes, root, cursor);
        cursor +=
            static_cast<double>(nodes[root].stack->totalNs) / 1000.0;
    }

    // One counter track per phase: entry counts at the span's edges so
    // Perfetto renders a visible track even for an aggregate profile.
    double span_us = cursor > 0.0 ? cursor : 1.0;
    for (const PhaseReport& phase : report.phases) {
        for (double ts : {0.0, span_us}) {
            out += "  {\"ph\":\"C\",\"pid\":1,\"tid\":1,\"name\":\"prof.";
            out += phaseName(phase.phase);
            out += ".count\",\"ts\":";
            appendNumber(out, ts);
            out += ",\"args\":{\"count\":" +
                   std::to_string(phase.count) + "}},\n";
        }
    }

    out += "  {\"ph\":\"M\",\"pid\":1,\"name\":\"prof_calibration\","
           "\"args\":{\"clock\":\"";
    out += report.calibration.clock;
    out += "\",\"ns_per_timed_event\":";
    appendNumber(out, report.calibration.nsPerTimedEvent);
    out += ",\"ns_per_counted_event\":";
    appendNumber(out, report.calibration.nsPerCountedEvent);
    out += "}}\n";
    out += "]}\n";
    return out;
}

std::string
bottleneckTable(const Report& report)
{
    std::vector<const PhaseReport*> ranked;
    for (const PhaseReport& phase : report.phases)
        ranked.push_back(&phase);
    std::sort(ranked.begin(), ranked.end(),
              [](const PhaseReport* a, const PhaseReport* b) {
                  return a->estimatedSelfNs() > b->estimatedSelfNs();
              });
    double total_self = 0.0;
    for (const PhaseReport* phase : ranked)
        total_self += phase->estimatedSelfNs();

    std::string out;
    char line[160];
    std::snprintf(line, sizeof line, "%-16s %12s %12s %7s %12s %12s %7s\n",
                  "phase", "count", "timed", "period", "self_ms",
                  "total_ms", "self%");
    out += line;
    for (const PhaseReport* phase : ranked) {
        double self_ms = phase->estimatedSelfNs() / 1e6;
        double total_ms = phase->estimatedTotalNs() / 1e6;
        double share =
            total_self > 0.0
                ? 100.0 * phase->estimatedSelfNs() / total_self
                : 0.0;
        std::snprintf(line, sizeof line,
                      "%-16s %12llu %12llu %7u %12.3f %12.3f %6.1f%%\n",
                      phaseName(phase->phase),
                      static_cast<unsigned long long>(phase->count),
                      static_cast<unsigned long long>(phase->timedCount),
                      1u << phaseSampleShift(phase->phase), self_ms,
                      total_ms, share);
        out += line;
    }
    std::snprintf(line, sizeof line,
                  "profiler overhead: ~%.3f ms estimated "
                  "(%llu events, %llu timed, clock=%s)\n",
                  report.estimatedOverheadNs() / 1e6,
                  static_cast<unsigned long long>(report.events()),
                  static_cast<unsigned long long>(report.timedEvents()),
                  report.calibration.clock);
    out += line;
    return out;
}

} // namespace phantom::obs::prof
