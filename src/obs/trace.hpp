/**
 * @file
 * Pipeline event tracing.
 *
 * The simulator's argument is *where in the pipeline* a misprediction is
 * detected and how far the phantom target advances (IF/ID/EX). This
 * module captures that as a stream of typed events with cycle timestamps
 * and episode ids, instead of stringly log lines: BTB activity, the
 * speculative fetch/decode/execute ladder, the resteer that ends an
 * episode, and squashes of predictor state.
 *
 * Design constraints:
 *  - The simulation hot loop must pay only a null-pointer branch when no
 *    sink is attached (see Machine::trace()).
 *  - Campaign workers run trials concurrently, so each scheduler shard
 *    owns a private RingTraceSink: single producer, consumed only after
 *    the workers join — no locks or atomics on the emit path.
 *  - Rings are bounded and overwrite the oldest events; the overwrite
 *    count is exposed so exports never silently truncate.
 */

#ifndef PHANTOM_OBS_TRACE_HPP
#define PHANTOM_OBS_TRACE_HPP

#include "sim/types.hpp"

#include <cstddef>
#include <vector>

namespace phantom::obs {

/** Typed pipeline events emitted from Machine/Bpu hook points. */
enum class TraceEventKind : u8 {
    BtbLookup = 0,    ///< pre-decode prediction query (arg32: 1 = hit)
    BtbInstall,       ///< trainBranch installed/refreshed an entry
    SpecFetch,        ///< speculative target line entered L1I
    SpecDecode,       ///< speculative instruction decoded at the target
    SpecExec,         ///< transient µop executed on the wrong path
    FrontendResteer,  ///< decoder-issued resteer (PHANTOM window closes)
    BackendResteer,   ///< execute-issued resteer (Spectre window closes)
    Squash,           ///< predictor state dropped (IBPB / decoder invalidate)
    OpCacheFill,      ///< µop-cache line filled by (speculative) decode
    OpCacheHit,       ///< committed fetch served from the µop cache
    EpisodeBegin,     ///< speculation episode opened (arg8: provisional)
    EpisodeEnd,       ///< episode classified (arg8: cpu::EpisodeKind)
    kCount,
};

/** Stable lower_snake name of @p kind, used as the trace label. */
const char* traceEventName(TraceEventKind kind);

/** One traced event. Fixed 40-byte POD so rings stay cache-friendly. */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::BtbLookup;
    u8 arg8 = 0;       ///< event-specific small payload (episode kind…)
    u16 shard = 0;     ///< filled by the sink owner at export time
    u32 arg32 = 0;     ///< event-specific count (decoded insns, µops…)
    Cycle cycle = 0;   ///< machine clock at emission
    u64 episode = 0;   ///< owning episode id; 0 = outside any episode
    u64 pc = 0;        ///< source pc (predicted / resteered instruction)
    u64 addr = 0;      ///< event target address, when meaningful
};

/** Event consumer interface. Implementations must tolerate being called
 *  from exactly one thread at a time (per-shard ownership). */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void emit(const TraceEvent& event) = 0;
};

/**
 * Bounded single-producer ring buffer sink. Capacity is rounded up to a
 * power of two; once full, the oldest events are overwritten and
 * dropped() counts the overwrites, so consumers can report truncation
 * instead of hiding it. snapshot() returns the retained events oldest
 * first and is only safe after the producing worker has joined.
 */
class RingTraceSink : public TraceSink
{
  public:
    explicit RingTraceSink(std::size_t capacity = 1u << 16);

    void
    emit(const TraceEvent& event) override
    {
        ring_[head_ & mask_] = event;
        ++head_;
        if (head_ - tail_ > ring_.size()) {
            ++tail_;
            ++dropped_;
        }
    }

    /** Events currently retained, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    u64 emitted() const { return head_; }
    u64 dropped() const { return dropped_; }
    std::size_t capacity() const { return ring_.size(); }
    void clear();

  private:
    std::vector<TraceEvent> ring_;
    std::size_t mask_;
    u64 head_ = 0;    ///< next write slot (monotonic)
    u64 tail_ = 0;    ///< oldest retained slot (monotonic)
    u64 dropped_ = 0;
};

/**
 * Ambient per-thread sink. Machines constructed on a scheduler worker
 * pick this up automatically, so campaign code does not have to plumb a
 * sink through every Testbed/Experiment constructor. Null by default:
 * tracing costs one branch per hook until a sink is installed.
 */
TraceSink* activeTraceSink();
void setActiveTraceSink(TraceSink* sink);

/** RAII installer for activeTraceSink(), restoring the previous sink. */
class ScopedTraceSink
{
  public:
    explicit ScopedTraceSink(TraceSink* sink)
        : prev_(activeTraceSink())
    {
        setActiveTraceSink(sink);
    }
    ~ScopedTraceSink() { setActiveTraceSink(prev_); }
    ScopedTraceSink(const ScopedTraceSink&) = delete;
    ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

  private:
    TraceSink* prev_;
};

} // namespace phantom::obs

#endif // PHANTOM_OBS_TRACE_HPP
