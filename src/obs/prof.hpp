/**
 * @file
 * Host-time self-profiler: wall-clock attribution for the simulator's
 * own hot paths (not guest cycles — OBSERVABILITY.md's cycle
 * attribution covers those).
 *
 * Scoped phase timers (`PROF_SCOPE(DecodeMiss)`) mark the regions worth
 * attributing: the Machine step loop, decode-cache hit/miss, BPU
 * predict/update, page walk, cache model, speculation episodes,
 * snapshot capture/fork/restore and serve dispatch. Each thread keeps a
 * small frame stack so a phase's *self* time excludes timed children,
 * and aggregates into a per-thread shard (counts, total/self ns, log2
 * duration histograms) registered lazily in a global table; collect()
 * merges shards order-free exactly like MetricsRegistry, so the result
 * does not depend on scheduler interleaving.
 *
 * Overhead discipline — the reason this is usable on paths entered
 * several times per simulated instruction:
 *
 *  - Gated by PHANTOM_PROF (default off). When off, PROF_SCOPE costs a
 *    single relaxed atomic load and branch; nothing is recorded and
 *    bench/serve output is byte-identical to an uninstrumented build.
 *  - Hot leaf phases are *sampled*: every entry is counted exactly, but
 *    only 1-in-2^shift entries are timed (phaseSampleShift()). Coarse
 *    phases (machine.run, snap.*) time every entry.
 *  - Timestamps come from rdtsc where available, calibrated against
 *    steady_clock once at startup; the per-event cost of both the timed
 *    and the count-only path is itself measured, and every Report
 *    carries the resulting overhead estimate so consumers can judge
 *    how much of the measured wall time the profiler added.
 *
 * Reported totals are *raw measured* nanoseconds over timed entries
 * only (plus exact entry counts); display layers may scale self/total
 * by count/timed_count for an estimate, but the stored numbers never
 * extrapolate, so invariants like "self <= total" and "sum(self) <=
 * wall * threads" hold by construction. Time spent in a sampled-out
 * child entry is attributed to the innermost *timed* enclosing frame.
 */

#ifndef PHANTOM_OBS_PROF_HPP
#define PHANTOM_OBS_PROF_HPP

#include "obs/metrics.hpp"
#include "sim/types.hpp"

#include <atomic>
#include <string>
#include <vector>

namespace phantom::obs::prof {

/** The phase taxonomy. Order is the merge/serialization order; names
 *  (phaseName) are the stable identifiers carried in every export. */
enum class Phase : u8 {
    MachineRun = 0,  ///< Machine::run step loop (coarse, always timed)
    DecodeHit,       ///< decode-cache probe (counts every lookup)
    DecodeMiss,      ///< byte fetch + isa::decode + cache insert
    DecodeBlockBuild,///< superblock formation (decode-until-branch)
    DecodeBlockHit,  ///< superblock probe that found a live block
    BpuPredict,      ///< Bpu::predictAt
    BpuUpdate,       ///< Bpu::trainBranch
    PageWalk,        ///< PageTable::translate
    CacheAccess,     ///< CacheHierarchy fetch/data latency ladder
    SpecEpisode,     ///< one speculation episode end to end
    SpecExec,        ///< transient execution inside an episode
    SnapCapture,     ///< snap::capture
    SnapRestore,     ///< snap::restore
    SnapFork,        ///< snap::fork (nests a SnapRestore)
    ServeDispatch,   ///< serve::Server per-request experiment dispatch
    FuzzGenerate,    ///< fuzz::ProgramGenerator::generate
    FuzzOracle,      ///< fuzz::checkProgram differential oracles
    FuzzMinimize,    ///< fuzz::minimize delta-reduction loop
    Count,
};

inline constexpr int kPhaseCount = static_cast<int>(Phase::Count);

/** Stable dotted name of @p phase ("decode.miss", ...). */
const char* phaseName(Phase phase);

/** Phase named @p name, or Phase::Count when unknown. */
Phase phaseFromName(const std::string& name);

/** log2 of the sampling period for @p phase: 0 = every entry timed,
 *  4 = 1-in-16 entries timed (entries are always *counted* exactly). */
unsigned phaseSampleShift(Phase phase);

namespace detail {

extern std::atomic<bool> gEnabled;

/** Slow path of ScopedPhase: count the entry and, when this entry is
 *  sampled for timing, push a frame. Returns true iff a frame was
 *  pushed (the caller must then invoke close()). */
bool open(Phase phase);

/** Pop the current frame and fold its duration into the shard. */
void close();

} // namespace detail

/** The PHANTOM_PROF gate (also flipped by setEnabled for tests). */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Test hook: force the gate. Does not clear recorded data. */
void setEnabled(bool on);

/**
 * RAII phase scope. When the gate is off, construction is one relaxed
 * load + branch and destruction one branch on a local.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase)
    {
        if (enabled())
            live_ = detail::open(phase);
    }

    ~ScopedPhase()
    {
        if (live_)
            detail::close();
    }

    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;

  private:
    bool live_ = false;
};

#define PHANTOM_PROF_CONCAT2(a, b) a##b
#define PHANTOM_PROF_CONCAT(a, b) PHANTOM_PROF_CONCAT2(a, b)

/** Attribute the rest of the enclosing block to Phase::phase. */
#define PROF_SCOPE(phase)                                         \
    ::phantom::obs::prof::ScopedPhase PHANTOM_PROF_CONCAT(        \
        phantom_prof_scope_,                                      \
        __LINE__)(::phantom::obs::prof::Phase::phase)

/** Aggregates of one phase, merged across all shards. */
struct PhaseReport
{
    Phase phase = Phase::Count;
    u64 count = 0;        ///< entries, exact (sampled or not)
    u64 timedCount = 0;   ///< entries that were actually timed
    u64 totalNs = 0;      ///< raw ns across timed entries
    u64 selfNs = 0;       ///< totalNs minus timed-child ns
    Histogram hist;       ///< per-timed-entry duration, log2 ns buckets

    /** selfNs scaled by count/timedCount — the display estimate. */
    double estimatedSelfNs() const;
    /** totalNs scaled by count/timedCount. */
    double estimatedTotalNs() const;
};

/** One merged call path ("machine.run;decode.miss"), from timed
 *  entries only. */
struct StackReport
{
    std::string stack;
    u64 count = 0;
    u64 totalNs = 0;
    u64 selfNs = 0;
};

/** How ticks map to ns and what one probe costs. */
struct Calibration
{
    const char* clock = "steady";  ///< "tsc" or "steady"
    double nsPerTimedEvent = 0.0;  ///< cost of a timed open+close pair
    double nsPerCountedEvent = 0.0;  ///< cost of a sampled-out entry
};

struct Report
{
    bool enabled = false;
    u64 threads = 0;  ///< shards that recorded at least one entry
    std::vector<PhaseReport> phases;  ///< count > 0 only, in Phase order
    std::vector<StackReport> stacks;  ///< sorted by stack string
    Calibration calibration;

    u64 events() const;       ///< sum of phase counts
    u64 timedEvents() const;  ///< sum of phase timedCounts
    /** Estimated ns the profiler itself added to the run. */
    double estimatedOverheadNs() const;
};

/** Merge every shard (order-free) into one Report. Thread-safe; live
 *  scopes on other threads contribute on their next close(). */
Report collect();

/** Zero all shard aggregates and the path tables in place (shards stay
 *  registered: thread-locals keep pointing at them). Test-only — do not
 *  call with profiled scopes open on other threads. */
void resetForTest();

/**
 * Flamegraph.pl input: one "a;b;c <self_ns>" line per call path with
 * positive self time, sorted. Raw ns over timed entries.
 */
std::string foldedStacks(const Report& report);

/**
 * Chrome trace_event JSON loadable by Perfetto: the merged call tree
 * laid out as nested "X" slices (one lane), plus one counter track per
 * phase carrying its entry count. Aggregate, not a timeline — slice
 * offsets are synthetic.
 */
std::string perfettoTraceJson(const Report& report);

/**
 * Ranked bottleneck table (text): phases by estimated self time
 * descending, with counts, sampling period and overhead footer.
 */
std::string bottleneckTable(const Report& report);

} // namespace phantom::obs::prof

#endif // PHANTOM_OBS_PROF_HPP
