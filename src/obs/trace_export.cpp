#include "obs/trace_export.hpp"

#include "sim/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace phantom::obs {

namespace {

void
appendEscaped(std::string& out, const std::string& s)
{
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

void
appendHex(std::string& out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendU64(std::string& out, u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    out += buf;
}

void
appendTs(std::string& out, double ts)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f", ts);
    out += buf;
}

/** Open one event object with the fields every record shares. */
void
beginEvent(std::string& out, bool& first, const char* ph, unsigned tid,
           double ts)
{
    out += first ? "\n  {" : ",\n  {";
    first = false;
    out += "\"ph\":\"";
    out += ph;
    out += "\",\"pid\":1,\"tid\":";
    appendU64(out, tid);
    out += ",\"ts\":";
    appendTs(out, ts);
}

void
metadataEvent(std::string& out, bool& first, const char* name, int tid,
              const std::string& value)
{
    out += first ? "\n  {" : ",\n  {";
    first = false;
    out += "\"ph\":\"M\",\"pid\":1,";
    if (tid >= 0) {
        out += "\"tid\":";
        appendU64(out, static_cast<u64>(tid));
        out += ",";
    }
    out += "\"name\":\"";
    out += name;
    out += "\",\"args\":{\"name\":\"";
    appendEscaped(out, value);
    out += "\"}}";
}

void
instantEvent(std::string& out, bool& first, unsigned tid,
             const TraceEvent& e)
{
    beginEvent(out, first, "i", tid, static_cast<double>(e.cycle));
    out += ",\"s\":\"t\",\"name\":\"";
    out += traceEventName(e.kind);
    out += "\",\"args\":{\"pc\":\"";
    appendHex(out, e.pc);
    out += "\",\"addr\":\"";
    appendHex(out, e.addr);
    out += "\",\"episode\":";
    appendU64(out, e.episode);
    out += "}}";
}

void
sliceEvent(std::string& out, bool& first, unsigned tid,
           const std::string& name, double ts, double dur,
           const std::string& args_json)
{
    beginEvent(out, first, "X", tid, ts);
    out += ",\"dur\":";
    appendTs(out, dur);
    out += ",\"name\":\"";
    appendEscaped(out, name);
    out += "\"";
    if (!args_json.empty()) {
        out += ",\"args\":";
        out += args_json;
    }
    out += "}";
}

/** Accumulated state of one open episode while scanning a shard. */
struct OpenEpisode
{
    u64 id = 0;
    Cycle begin = 0;
    u64 pc = 0;
    u64 target = 0;
    u32 fetches = 0;
    u32 decodes = 0;
    u32 execs = 0;
};

} // namespace

std::string
chromeTraceJson(const std::vector<ShardTrace>& shards,
                const ChromeTraceOptions& options)
{
    std::string out = "{\n\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[";
    bool first = true;

    metadataEvent(out, first, "process_name", -1, options.processName);
    for (const ShardTrace& shard : shards) {
        std::string label = "shard " + std::to_string(shard.shard);
        if (shard.dropped > 0)
            label += " (+" + std::to_string(shard.dropped) +
                     " events dropped)";
        metadataEvent(out, first, "thread_name",
                      static_cast<int>(shard.shard), label);
    }

    for (const ShardTrace& shard : shards) {
        unsigned tid = shard.shard;
        OpenEpisode ep;
        bool open = false;

        for (const TraceEvent& e : shard.events) {
            switch (e.kind) {
              case TraceEventKind::EpisodeBegin:
                ep = OpenEpisode{};
                ep.id = e.episode;
                ep.begin = e.cycle;
                ep.pc = e.pc;
                ep.target = e.addr;
                open = true;
                break;

              case TraceEventKind::SpecFetch:
                if (open) ++ep.fetches;
                break;
              case TraceEventKind::SpecDecode:
                if (open) ++ep.decodes;
                break;
              case TraceEventKind::SpecExec:
                if (open) ++ep.execs;
                break;

              case TraceEventKind::FrontendResteer:
              case TraceEventKind::BackendResteer:
              case TraceEventKind::Squash:
                instantEvent(out, first, tid, e);
                break;

              case TraceEventKind::EpisodeEnd: {
                if (!open || e.episode != ep.id)
                    break;    // truncated ring: begin was overwritten
                open = false;

                std::string label =
                    options.episodeLabel != nullptr
                        ? std::string(options.episodeLabel(e.arg8))
                        : "kind" + std::to_string(e.arg8);

                double ts = static_cast<double>(ep.begin);
                double dur = static_cast<double>(
                    e.cycle > ep.begin ? e.cycle - ep.begin : 1);

                std::string args = "{\"episode\":";
                appendU64(args, ep.id);
                args += ",\"pc\":\"";
                appendHex(args, ep.pc);
                args += "\",\"target\":\"";
                appendHex(args, ep.target);
                args += "\",\"spec_fetch\":";
                appendU64(args, ep.fetches);
                args += ",\"spec_decode\":";
                appendU64(args, ep.decodes);
                args += ",\"spec_exec\":";
                appendU64(args, ep.execs);
                args += "}";

                sliceEvent(out, first, tid, "episode:" + label, ts, dur,
                           args);

                // IF/ID/EX child slices: partition the episode span by
                // the stages the target actually reached, weighting ID
                // and EX by their event counts so deeper advancement
                // reads as a longer slice.
                double weights[3] = {
                    ep.fetches > 0 ? 1.0 : 0.0,
                    static_cast<double>(ep.decodes),
                    static_cast<double>(ep.execs),
                };
                const char* names[3] = {"IF", "ID", "EX"};
                double total = weights[0] + weights[1] + weights[2];
                if (total > 0) {
                    double at = ts;
                    for (int s = 0; s < 3; ++s) {
                        if (weights[s] <= 0)
                            continue;
                        double span = dur * weights[s] / total;
                        sliceEvent(out, first, tid, names[s], at, span,
                                   "");
                        at += span;
                    }
                }
                break;
              }

              case TraceEventKind::BtbLookup:
              case TraceEventKind::BtbInstall:
              case TraceEventKind::OpCacheFill:
              case TraceEventKind::OpCacheHit:
                // High-frequency events: kept in ring snapshots and in
                // the metrics counters, omitted from the viewer export.
                break;
              case TraceEventKind::kCount:
                break;
            }
        }
    }

    out += "\n]\n}\n";
    return out;
}

bool
writeChromeTrace(const std::string& path,
                 const std::vector<ShardTrace>& shards,
                 const ChromeTraceOptions& options)
{
    std::string text = chromeTraceJson(shards, options);
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        logError("cannot open trace output ", path);
        return false;
    }
    std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    bool ok = written == text.size() && std::fclose(f) == 0;
    if (!ok)
        logError("short write of trace output ", path);
    return ok;
}

std::string
tracePathFromEnv()
{
    const char* env = std::getenv("PHANTOM_TRACE");
    return (env != nullptr && *env != '\0') ? env : "";
}

} // namespace phantom::obs
