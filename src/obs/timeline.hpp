/**
 * @file
 * Request-scoped timing: a monotonic per-request timeline plus a
 * bounded ring of completed timelines (the flight recorder's /statsz
 * surface).
 *
 * A RequestTimeline carries one nanosecond timestamp per lifecycle
 * stage (accepted → head-parsed → validated → enqueued → dequeued →
 * train-or-fork → executed → serialized → written). Stages a request
 * never reaches stay unmarked; marks are clamped monotone so the stage
 * order always holds even across threads with slightly skewed reads.
 *
 * The derived per-stage durations form an exact partition: each marked
 * stage's micros are the difference of consecutive *cumulative*
 * microsecond offsets from the accept mark, so they telescope to
 * totalMicros() with no rounding residue — the same partition contract
 * cycle attribution keeps for simulated cycles (OBSERVABILITY.md).
 *
 * TimelineRing is the "last N completed requests" buffer: bounded,
 * oldest evicted, with an eviction counter so truncation is never
 * silent. Like MetricsRegistry it is not thread-safe; the server
 * guards it with its stats mutex.
 */

#ifndef PHANTOM_OBS_TIMELINE_HPP
#define PHANTOM_OBS_TIMELINE_HPP

#include "sim/types.hpp"

#include <array>
#include <cstddef>
#include <deque>
#include <string>
#include <vector>

namespace phantom::obs {

/** Lifecycle stages of one service request, in order. */
enum class RequestStage : u8 {
    Accepted = 0,     ///< connection accepted / request object created
    HeadParsed,       ///< HTTP request head parsed
    Validated,        ///< spec parsed + semantically validated
    Enqueued,         ///< admitted to the queue
    Dequeued,         ///< a worker picked the request up
    TrainOrFork,      ///< warm state in hand (trained fresh or forked)
    Executed,         ///< simulation channels done
    Serialized,       ///< response document rendered
    Written,          ///< response bytes handed to the peer
    kCount,
};

constexpr std::size_t kRequestStages =
    static_cast<std::size_t>(RequestStage::kCount);

/** Stable lower_snake name ("accepted", "head_parsed", ...). */
const char* requestStageName(RequestStage stage);

class RequestTimeline
{
  public:
    RequestTimeline() = default;

    /** A timeline for request @p id; marks Accepted immediately. */
    explicit RequestTimeline(u64 id);

    u64 id() const { return id_; }

    /** Stamp @p stage with the monotonic clock, clamped so marks can
     *  never run backwards relative to earlier stages. */
    void mark(RequestStage stage);

    /** Test hook: stamp @p stage at an explicit nanosecond reading. */
    void markAt(RequestStage stage, u64 ns);

    bool marked(RequestStage stage) const;

    /** Raw monotonic nanoseconds of @p stage (0 when unmarked). */
    u64 ns(RequestStage stage) const;

    /** Whole microseconds between Accepted and @p stage. */
    u64 sinceAcceptMicros(RequestStage stage) const;

    /** Whole microseconds between Accepted and now. */
    u64 elapsedMicros() const;

    /**
     * Exact partition of the request's lifetime: entry i is the
     * microseconds between stage i and the last stage marked before
     * it (0 for unmarked stages and for Accepted itself). Because each
     * entry is a difference of consecutive sinceAcceptMicros() values,
     * the entries sum to totalMicros() exactly.
     */
    std::array<u64, kRequestStages> stageMicros() const;

    /** sinceAcceptMicros() of the last marked stage. */
    u64 totalMicros() const;

  private:
    u64 id_ = 0;
    std::array<u64, kRequestStages> ns_{};   // 0 = unmarked
    u64 lastNs_ = 0;                         // latest mark, for clamping
};

/** One completed request as retained by the flight-recorder ring. */
struct TimelineRecord
{
    RequestTimeline timeline;
    int status = 0;          ///< HTTP status answered
    u64 bytes = 0;           ///< response body bytes
    std::string target;      ///< request target ("/run", "/healthz", ...)
    std::string batchKey;    ///< dispatcher batch key; empty off /run
    std::string warmSource;  ///< "capture", "fork", "restore" or "none"
};

/** Bounded ring of the last N completed timelines, oldest evicted. */
class TimelineRing
{
  public:
    explicit TimelineRing(std::size_t capacity = 64);

    void push(TimelineRecord record);

    /** Retained records, oldest first. */
    std::vector<TimelineRecord> snapshot() const;

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return records_.size(); }
    u64 pushed() const { return pushed_; }
    u64 evicted() const { return evicted_; }  ///< never silent

  private:
    std::size_t capacity_;
    std::deque<TimelineRecord> records_;
    u64 pushed_ = 0;
    u64 evicted_ = 0;
};

} // namespace phantom::obs

#endif // PHANTOM_OBS_TIMELINE_HPP
