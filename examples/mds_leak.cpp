/**
 * @file
 * Arbitrary kernel memory disclosure demo (paper §7.4): a kernel module
 * carries a single-load bounds-check gadget (Listing 4) — harmless under
 * classic Spectre, since it never performs a secret-dependent second
 * load. PHANTOM's P3 primitive supplies that second load by hijacking
 * the module's call instruction towards a shift+load disclosure gadget
 * inside the transient window, turning the MDS-style gadget into an
 * arbitrary-read primitive on AMD Zen 1/2.
 */

#include "attack/exploits.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    MdsLeakOptions options;
    options.bytes = 0;             // we drive leakByte() manually
    MdsGadgetLeak leak(cpu::zen2(), options);
    Testbed& bed = leak.testbed();
    std::printf("victim: %s; MDS gadget module loaded\n",
                bed.machine.config().model.c_str());

    // Plant a recognizable secret in kernel memory (the module's secret
    // page normally holds random data; for the demo we make it legible).
    const char* secret = "root:x:0:0:TOP-SECRET-KERNEL-DATA";
    for (std::size_t i = 0; i <= std::strlen(secret); ++i) {
        u64 word = bed.machine.debugRead64(leak.secretVa() + i).value_or(0);
        word = (word & ~0xffull) | static_cast<u8>(secret[i]);
        bed.machine.debugWrite64(leak.secretVa() + i, word);
    }

    std::printf("leaking %zu bytes from kernel VA 0x%llx...\n",
                std::strlen(secret),
                static_cast<unsigned long long>(leak.secretVa()));

    std::string recovered;
    u64 misses = 0;
    for (std::size_t i = 0; i < std::strlen(secret); ++i) {
        int byte = leak.leakByte(leak.secretVa() + i);
        if (byte < 0) {
            recovered.push_back('?');
            ++misses;
        } else {
            recovered.push_back(std::isprint(byte) ? static_cast<char>(byte)
                                                   : '.');
        }
    }

    std::printf("kernel secret : %s\n", secret);
    std::printf("leaked        : %s\n", recovered.c_str());
    std::printf("bytes without signal: %llu\n",
                static_cast<unsigned long long>(misses));
    bool ok = recovered == secret;
    std::printf("%s\n", ok ? "exact leak." : "partial leak.");
    return ok ? 0 : 1;
}
