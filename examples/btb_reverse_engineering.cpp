/**
 * @file
 * BTB reverse-engineering walkthrough (paper §6.2): recover the Zen 3
 * cross-privilege indexing functions from a purely microarchitectural
 * collision oracle — no access to the (simulated) hardware's internals.
 *
 * Mirrors the paper's two attempts:
 *   1. brute force small bit-flip patterns (fails on Zen 3),
 *   2. random sampling + bounded-weight XOR recovery (the paper's Z3
 *      step, replaced by exhaustive GF(2) search), which yields the
 *      twelve Figure-7 functions.
 */

#include "attack/btb_re.hpp"
#include "bpu/btb_hash.hpp"

#include <algorithm>
#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    BtbReverseEngineer re(cpu::zen3(), /*seed=*/2);
    std::printf("victim kernel address K = 0x%llx (nop inside a module)\n",
                static_cast<unsigned long long>(re.kernelVictimVa()));

    // ---- Attempt 1: brute force ----------------------------------------
    std::printf("\n[1] brute forcing flip patterns (bit 47 + up to 3 "
                "more bits)...\n");
    auto masks = re.bruteForce(4);
    std::printf("    %zu patterns collide after %llu oracle queries "
                "(paper: none up to 6 bits on Zen 3)\n",
                masks.size(), static_cast<unsigned long long>(re.queries()));

    // ---- Attempt 2: sampling + solver ------------------------------------
    std::printf("\n[2] sampling random user addresses with the low 12 "
                "bits pinned to K's...\n");
    auto diffs = re.collectCollisionDiffs(/*want=*/20,
                                          /*max_queries=*/1'500'000);
    std::printf("    %zu colliding addresses collected (%llu queries "
                "total)\n",
                diffs.size(),
                static_cast<unsigned long long>(re.queries()));

    std::printf("\n[3] solving for XOR functions of bounded weight "
                "(every function forced to involve b47, as in the "
                "paper's solver setup)...\n");
    analysis::ParityRecoveryOptions options;
    auto functions = analysis::recoverParityMasks(diffs, options);

    auto published = bpu::zen34ParityMasks();
    std::size_t matched = 0;
    for (u64 f : functions) {
        bool known = std::find(published.begin(), published.end(), f) !=
                     published.end();
        matched += known ? 1 : 0;
        std::printf("    f: %-36s %s\n", analysis::maskToString(f).c_str(),
                    known ? "(Figure 7)" : "(extra)");
    }
    std::printf("\nrecovered %zu/%u of the published functions\n", matched,
                bpu::kNumZen34Functions);

    // ---- Use the result ----------------------------------------------------
    std::printf("\n[4] deriving a collision mask from the recovered "
                "functions and validating it...\n");
    // The paper's K ^ 0xffffbff800000000 pattern flips b47 plus one mid
    // bit of each function; confirm it against the oracle.
    VAddr alias = canonicalize(re.kernelVictimVa() ^ 0xffffbff800000000ull);
    bool hit = re.collides(alias) && re.collides(alias);
    std::printf("    K ^ 0xffffbff800000000 -> %s\n",
                hit ? "collides (exploitable from user space)"
                    : "no collision");
    return matched == bpu::kNumZen34Functions && hit ? 0 : 1;
}
