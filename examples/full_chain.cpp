/**
 * @file
 * The paper's complete §7 attack chain, end to end, with every stage
 * consuming only what the previous stage *discovered* — no ground truth
 * flows into the attack:
 *
 *   stage 1 (§7.1): derandomize the kernel image base with P1,
 *   stage 2 (§7.2): derandomize the physmap base with P2,
 *   stage 3 (§7.4): find the physical address of the attacker's reload
 *                   buffer through the discovered physmap,
 *   stage 4 (§7.4): leak kernel memory through a single-load MDS gadget
 *                   with P3 nested speculation and Flush+Reload on the
 *                   (discovered) physmap alias of the reload buffer.
 *
 * Ground truth is consulted only at the end, to grade the leak.
 */

#include "attack/exploits.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    auto cfg = cpu::zen2();
    Testbed bed(cfg, kDefaultPhysBytes, /*seed=*/0xc0ffee);
    std::printf("victim: %s, kernel booted with KASLR\n",
                cfg.model.c_str());

    // Stage 0: attacker maps its reload buffer (a 2 MiB huge page).
    constexpr VAddr kReloadVa = 0x0000000200000000ull;
    bed.process.mapHugeData(kReloadVa, /*random_placement=*/true);

    // ---- Stage 1: kernel image base --------------------------------------
    KaslrOptions kaslr_options;
    kaslr_options.scoreSets = 16;
    KernelImageKaslrBreak stage1(bed, kaslr_options);
    DerandResult image = stage1.run();
    std::printf("[1] image base    = 0x%llx  (%.4f sim s)  %s\n",
                static_cast<unsigned long long>(image.guessed),
                image.seconds, image.success ? "ok" : "WRONG");
    if (!image.guessed)
        return 1;

    // ---- Stage 2: physmap base --------------------------------------------
    PhysmapKaslrBreak stage2(bed, image.guessed);
    DerandResult physmap = stage2.run();
    std::printf("[2] physmap base  = 0x%llx  (%.4f sim s)  %s\n",
                static_cast<unsigned long long>(physmap.guessed),
                physmap.seconds, physmap.success ? "ok" : "WRONG");
    if (!physmap.guessed)
        return 1;

    // ---- Stage 3: physical address of the reload buffer ---------------------
    PhysAddrFinder stage3(bed, image.guessed, physmap.guessed, kReloadVa);
    DerandResult reload_pa = stage3.run();
    std::printf("[3] reload buf PA = 0x%llx  (%.4f sim s)  %s\n",
                static_cast<unsigned long long>(reload_pa.guessed),
                reload_pa.seconds, reload_pa.success ? "ok" : "WRONG");

    // ---- Stage 4: leak kernel memory -----------------------------------------
    // The reload buffer's kernel alias is computed purely from stage 2+3
    // results.
    VAddr reload_kva = physmap.guessed + reload_pa.guessed;
    MdsLeakOptions options;
    options.bytes = 256;
    MdsGadgetLeak stage4(bed, options, kReloadVa, reload_kva);
    MdsLeakResult leak = stage4.run();
    std::printf("[4] leaked %llu bytes of kernel memory: accuracy "
                "%.1f%%, %llu without signal, %.0f B/s\n",
                static_cast<unsigned long long>(leak.bytes),
                leak.accuracy * 100.0,
                static_cast<unsigned long long>(leak.noSignal),
                leak.bytesPerSecond);

    bool ok = image.success && physmap.success && reload_pa.success &&
              leak.accuracy == 1.0;
    std::printf("%s\n", ok ? "full chain succeeded."
                           : "chain incomplete.");
    return ok ? 0 : 1;
}
