/**
 * @file
 * Quickstart: boot a simulated AMD Zen 3 machine, observe PHANTOM
 * speculation end to end in ~80 lines.
 *
 * What happens:
 *   1. A machine is created and a Linux-like kernel is booted with KASLR.
 *   2. From user mode, a branch prediction is injected at the address of
 *      a *nop* inside the kernel's getpid() path, pointing at a kernel
 *      code address of our choosing — by executing a jmp* at a
 *      BTB-aliasing user address and catching the fault.
 *   3. getpid() is invoked. While the frontend fetches the nop, the BTB
 *      claims a branch lives there, and the target is transiently
 *      fetched before the decoder corrects the mistake.
 *   4. A timing probe shows the target's cache line is now hot: the
 *      decoder-detectable misprediction left a microarchitectural trace.
 */

#include "attack/testbed.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

int
main()
{
    // 1. One machine + kernel + attacker process, AMD Zen 3 parameters.
    Testbed bed(cpu::zen3());
    std::printf("booted %s, kernel image @ 0x%llx (KASLR)\n",
                bed.machine.config().model.c_str(),
                static_cast<unsigned long long>(bed.kernel.imageBase()));

    // Warm the syscall path so only our injected prediction mispredicts.
    bed.syscall(os::kSysGetpid);

    // 2. Inject: make the BTB believe the nop at the start of
    //    __task_pid_nr_ns() (paper Listing 1) is an indirect branch to
    //    `target`.
    VAddr victim_nop = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x3000;
    PredictionInjector injector(bed);
    injector.inject(victim_nop, target);
    std::printf("injected prediction: kernel nop @ 0x%llx -> 0x%llx\n",
                static_cast<unsigned long long>(victim_nop),
                static_cast<unsigned long long>(target));

    // 3. Flush the target line, then run the victim syscall.
    bed.machine.clflushVirt(target);
    auto result = bed.syscall(os::kSysGetpid);
    std::printf("getpid() returned %llu in %llu cycles\n",
                static_cast<unsigned long long>(
                    bed.machine.regs().read(isa::RAX)),
                static_cast<unsigned long long>(result.cycles));

    // 4. Probe: a hot line means the phantom target was fetched.
    Cycle lat = bed.machine.timedFetchAccess(target, Privilege::Kernel);
    Cycle memory = bed.machine.caches().config().latMem;
    std::printf("target fetch latency: %llu cycles (memory = %llu)\n",
                static_cast<unsigned long long>(lat),
                static_cast<unsigned long long>(memory));
    if (lat < memory) {
        std::printf("=> PHANTOM: the target entered the pipeline while "
                    "the CPU was fetching a nop.\n");
    } else {
        std::printf("=> no speculation observed (unexpected on Zen 3)\n");
    }

    // Counters: one frontend (decoder-issued) resteer fired in kernel.
    std::printf("frontend resteers: %llu, spec fetches: %llu, spec "
                "decodes: %llu\n",
                static_cast<unsigned long long>(bed.machine.pmc().read(
                    cpu::PmcEvent::MispredictFrontend)),
                static_cast<unsigned long long>(
                    bed.machine.pmc().read(cpu::PmcEvent::SpecFetch)),
                static_cast<unsigned long long>(
                    bed.machine.pmc().read(cpu::PmcEvent::SpecDecode)));
    return 0;
}
