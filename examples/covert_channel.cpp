/**
 * @file
 * Kernel-to-user covert channel demo (paper §6.4): transmit an ASCII
 * message through PHANTOM speculation. Each bit hijacks a direct branch
 * in a kernel module with an injected prediction to one of two targets —
 * one mapped, one not — and receives the bit with Prime+Probe on the
 * instruction cache.
 */

#include "attack/covert.hpp"

#include <cstdio>
#include <cstring>
#include <string>

using namespace phantom;
using namespace phantom::attack;

int
main(int argc, char** argv)
{
    const char* message = argc > 1 ? argv[1] : "PHANTOM says hi";
    std::size_t nbits = std::strlen(message) * 8;

    CovertOptions options;
    options.bits = nbits;
    CovertChannel channel(cpu::zen3(), options);
    Testbed& bed = channel.testbed();
    std::printf("channel: P1 transient fetch on %s\n",
                bed.machine.config().model.c_str());

    // Drive the channel bit by bit, reusing its internals through the
    // public run API is batch-oriented; for the demo we re-run the
    // fetch channel on our own payload by transmitting via the module.
    // The CovertChannel's payload is random; here we want our message,
    // so we use the lower-level pieces directly.
    std::string received;
    Cycle start = bed.machine.cycles();

    // The CovertChannel class encapsulates per-bit send/receive; for a
    // custom payload we simply call its internals via a tiny local
    // re-implementation of the same loop.
    // (See src/attack/covert.cpp for the authoritative protocol.)
    u64 errors = 0;
    for (std::size_t i = 0; i < std::strlen(message); ++i) {
        u8 out = 0;
        for (int b = 7; b >= 0; --b) {
            bool bit = (message[i] >> b) & 1;
            bool rx = channel.transmitBit(bit);
            errors += (rx != bit) ? 1 : 0;
            out = static_cast<u8>((out << 1) | (rx ? 1 : 0));
        }
        received.push_back(out >= 0x20 && out < 0x7f ? static_cast<char>(out)
                                                     : '?');
    }

    Cycle cycles = bed.machine.cycles() - start;
    double seconds =
        static_cast<double>(cycles) /
        (bed.machine.config().clockGhz * 1e9);

    std::printf("sent    : %s\n", message);
    std::printf("received: %s\n", received.c_str());
    std::printf("bits: %zu, bit errors: %llu, %.0f bits/s simulated\n",
                nbits, static_cast<unsigned long long>(errors),
                static_cast<double>(nbits) / seconds);
    return 0;
}
