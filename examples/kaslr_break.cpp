/**
 * @file
 * End-to-end KASLR derandomization (paper §7.1 + §7.2), the workload the
 * paper's introduction motivates: an unprivileged process recovers the
 * randomized kernel image base on any Zen part, then — on Zen 1/2 —
 * continues to the physmap base with the transient-load primitive.
 */

#include "attack/exploits.hpp"

#include <cstdio>
#include <cstring>

using namespace phantom;
using namespace phantom::attack;

int
main(int argc, char** argv)
{
    // Pick the microarchitecture: zen1..zen4 (default zen2).
    cpu::MicroarchConfig cfg = cpu::zen2();
    if (argc > 1) {
        for (const auto& candidate : cpu::amdMicroarchs()) {
            if (candidate.name == argv[1])
                cfg = candidate;
        }
    }
    std::printf("victim: %s (%s)\n", cfg.model.c_str(), cfg.name.c_str());

    Testbed bed(cfg, kDefaultPhysBytes, /*seed=*/20260707);
    std::printf("kernel booted; the attacker does NOT know these:\n");
    std::printf("  image base   = 0x%llx\n",
                static_cast<unsigned long long>(bed.kernel.imageBase()));
    std::printf("  physmap base = 0x%llx\n",
                static_cast<unsigned long long>(bed.kernel.physmapBase()));

    // ---- Stage 1: kernel image KASLR via P1 (all Zen parts) ------------
    std::printf("\n[stage 1] scanning %llu image slots with P1 "
                "(transient fetch + Prime+Probe)...\n",
                static_cast<unsigned long long>(os::kImageSlots));
    KaslrOptions options;
    options.scoreSets = 16;
    KernelImageKaslrBreak stage1(bed, options);
    DerandResult image = stage1.run();
    std::printf("  guessed image base 0x%llx in %.4f simulated s -> %s\n",
                static_cast<unsigned long long>(image.guessed),
                image.seconds, image.success ? "CORRECT" : "wrong");
    if (!image.success)
        return 1;

    // ---- Stage 2: physmap KASLR via P2 (Zen 1/2 only) -------------------
    if (cfg.transientExecUops == 0) {
        std::printf("\n[stage 2] %s has no PHANTOM execute window: "
                    "physmap derandomization needs Zen 1/2.\n",
                    cfg.name.c_str());
        return 0;
    }
    std::printf("\n[stage 2] scanning %llu physmap slots with P2 "
                "(transient load via the __fdget_pos call)...\n",
                static_cast<unsigned long long>(os::kPhysmapSlots));
    PhysmapKaslrBreak stage2(bed, image.guessed);
    DerandResult physmap = stage2.run();
    std::printf("  guessed physmap base 0x%llx in %.4f simulated s -> "
                "%s\n",
                static_cast<unsigned long long>(physmap.guessed),
                physmap.seconds, physmap.success ? "CORRECT" : "wrong");

    if (image.success && physmap.success)
        std::printf("\nfull KASLR derandomization complete.\n");
    return physmap.success ? 0 : 1;
}
