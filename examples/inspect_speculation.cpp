/**
 * @file
 * Episode-tracer walkthrough: watch what the frontend does, episode by
 * episode, while the PHANTOM attack runs. Shows the taxonomy of the
 * paper's Figure 1/3 live — which stage each misprediction reached and
 * who issued the resteer — on Zen 2 (deep windows) and Zen 4 with
 * AutoIBRS (fetch-only cancellation).
 */

#include "attack/testbed.hpp"

#include <cstdio>

using namespace phantom;
using namespace phantom::attack;

namespace {

const char*
kindName(cpu::EpisodeKind kind)
{
    switch (kind) {
      case cpu::EpisodeKind::PhantomFrontend:   return "PHANTOM (decoder resteer)";
      case cpu::EpisodeKind::SpectreBackend:    return "Spectre (execute resteer)";
      case cpu::EpisodeKind::StraightLine:      return "straight-line";
      case cpu::EpisodeKind::AutoIbrsCancelled: return "AutoIBRS-cancelled";
      case cpu::EpisodeKind::IntelOpaque:       return "dropped (Intel jmp*)";
    }
    return "?";
}

void
dumpTrace(cpu::Machine& machine, const char* title)
{
    std::printf("\n%s\n", title);
    std::printf("%-28s %-18s %-18s %3s %3s %3s\n", "episode", "source",
                "target", "IF", "ID", "EX");
    for (const auto& rec : machine.episodeTrace()) {
        std::printf("%-28s 0x%-16llx 0x%-16llx %3d %3u %3u\n",
                    kindName(rec.kind),
                    static_cast<unsigned long long>(rec.sourcePc),
                    static_cast<unsigned long long>(rec.target),
                    rec.fetched, rec.decoded, rec.executed);
    }
    machine.clearEpisodeTrace();
}

void
runAttackWithTrace(const cpu::MicroarchConfig& cfg, bool auto_ibrs)
{
    Testbed bed(cfg);
    if (auto_ibrs)
        bed.machine.msrs().setBit(cpu::msr::kEfer, cpu::msr::kAutoIbrsBit,
                                  true);
    bed.syscall(os::kSysGetpid);   // warm: cold-path episodes are boring

    PredictionInjector injector(bed);
    VAddr victim = bed.kernel.getpidGadgetVa();
    VAddr target = bed.kernel.imageBase() + 0x3000;

    bed.machine.enableEpisodeTrace(64);
    injector.inject(victim, target);
    bed.syscall(os::kSysGetpid);

    char title[128];
    std::snprintf(title, sizeof title,
                  "%s%s — injection + getpid() victim run:",
                  cfg.name.c_str(), auto_ibrs ? " (AutoIBRS on)" : "");
    dumpTrace(bed.machine, title);
}

} // namespace

int
main()
{
    std::printf("Speculation-episode traces of the PHANTOM injection "
                "attack.\nThe injection itself appears as a Spectre "
                "episode in user mode\n(the training jmp* mispredicts "
                "towards the stale target), followed by\nthe kernel-mode "
                "episode at the victim nop.\n");

    runAttackWithTrace(cpu::zen2(), false);   // fetch+decode+execute
    runAttackWithTrace(cpu::zen4(), false);   // fetch+decode
    runAttackWithTrace(cpu::zen4(), true);    // fetch only (O5)
    return 0;
}
